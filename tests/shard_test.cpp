// Tests for the auto-sharding layer (docs/SHARDING.md): plan/decomposition
// semantics, bit-exactness of auto-sharded launches against both the
// hand-sharded jaccx::multi front end and serial host references, halo
// exchange at radius 0/1/2, measured rebalancing under skew, shard-buffer
// pool recycling, and the dist_cg placement policies.
//
// The bit-exactness pins deliberately exercise the deprecated multi API as
// the reference implementation, so its warnings are silenced.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/auto_backend.hpp"
#include "core/jacc.hpp"
#include "dist/dist_cg.hpp"
#include "mem/pool.hpp"
#include "multi/multi.hpp"

namespace jacc {
namespace {

using jaccx::config_error;
using jaccx::usage_error;
using jaccx::mem::pool_mode;
using jaccx::mem::scoped_mode;

std::vector<double> iota_vec(index_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

/// Values whose sums are order-sensitive in floating point, so reduction
/// combine-order differences cannot hide.
std::vector<double> harmonic_vec(index_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = 1.0 / static_cast<double>(i + 1);
  }
  return v;
}

/// RAII reset of the JACC_SHARD test override.
struct shard_mode_guard {
  explicit shard_mode_guard(int mode) { detail::set_shard_mode_for_test(mode); }
  ~shard_mode_guard() { detail::set_shard_mode_for_test(-1); }
};

std::uint64_t total_pool_misses() {
  std::uint64_t m = 0;
  for (const auto& s : jaccx::mem::stats()) {
    m += s.misses;
  }
  return m;
}

// --- plan / decomposition ----------------------------------------------------

TEST(ShardPlan, EqualWeightsMatchStaticChunk) {
  device_set ds(backend::cuda_a100, 3);
  for (int d = 0; d < 3; ++d) {
    const auto got = ds.chunk(1001, d);
    const auto want = jaccx::pool::static_chunk(1001, 3, d);
    EXPECT_EQ(got.begin, want.begin) << "d=" << d;
    EXPECT_EQ(got.end, want.end) << "d=" << d;
  }
}

TEST(ShardPlan, SetWeightsReshapesBoundsAndBumpsGeneration) {
  device_set ds(backend::hip_mi100, 2);
  const auto g0 = ds.plan_generation();
  ds.set_weights({3.0, 1.0});
  EXPECT_GT(ds.plan_generation(), g0);
  EXPECT_EQ(ds.chunk(1000, 0).size(), 750);
  EXPECT_EQ(ds.chunk(1000, 1).size(), 250);
}

TEST(ShardPlan, OffModePinsEverythingToDeviceZero) {
  const shard_mode_guard off(0);
  device_set ds(backend::cuda_a100, 4);
  EXPECT_FALSE(ds.auto_shard());
  EXPECT_EQ(ds.chunk(99, 0).size(), 99);
  for (int d = 1; d < 4; ++d) {
    EXPECT_TRUE(ds.chunk(99, d).empty());
  }
  // Launches still work, just on one device.
  const index_t n = 512;
  array<double> x(sharded(ds), iota_vec(n));
  const device_set_scope scope(ds);
  parallel_for(n, [](index_t i, array<double>& xs) { xs[i] *= 2.0; }, x);
  const double s = parallel_reduce(
      n, [](index_t i, const array<double>& xs) {
        return static_cast<double>(xs[i]);
      },
      x);
  EXPECT_DOUBLE_EQ(s, static_cast<double>(n * (n - 1)));
}

TEST(ShardPlan, GarbageEnvironmentValueRejected) {
  const shard_mode_guard from_env(-1);
  ::setenv("JACC_SHARD", "sometimes", 1);
  EXPECT_THROW(device_set(backend::cuda_a100, 2), config_error);
  ::unsetenv("JACC_SHARD");
}

TEST(ShardPlan, RejectsRealBackendsAndZeroDevices) {
  EXPECT_THROW(device_set(backend::serial, 2), usage_error);
  EXPECT_THROW(device_set(backend::threads, 2), usage_error);
  EXPECT_THROW(device_set(backend::cpu_rome, 2), usage_error);
  EXPECT_THROW(device_set(backend::cuda_a100, 0), usage_error);
}

// --- bit-exactness vs the hand-sharded multi front end -----------------------

class ShardVsMulti
    : public ::testing::TestWithParam<std::tuple<backend, int>> {};

TEST_P(ShardVsMulti, AxpyBitExact) {
  const auto [be, ndev] = GetParam();
  const index_t n = 10'007;
  const auto xs0 = harmonic_vec(n);
  const auto ys0 = iota_vec(n);

  jaccx::multi::context ctx(be, ndev);
  ctx.reset_clocks();
  jaccx::multi::marray<double> mx(ctx, xs0);
  jaccx::multi::marray<double> my(ctx, ys0);
  jaccx::multi::parallel_for(
      ctx, n,
      [](index_t i, jaccx::sim::device_span<double> x,
         jaccx::sim::device_span<double> y) {
        x[i] += 2.0 * static_cast<double>(y[i]);
      },
      mx, my);
  ctx.sync();
  const auto want = mx.gather();

  device_set ds(be, ndev);
  ds.reset_clocks();
  array<double> ax(sharded(ds), xs0);
  array<double> ay(sharded(ds), ys0);
  {
    const device_set_scope scope(ds);
    parallel_for(n,
                 [](index_t i, array<double>& x, const array<double>& y) {
                   x[i] += 2.0 * static_cast<double>(y[i]);
                 },
                 ax, ay);
    ds.sync();
  }
  const auto got = ax.to_host();
  ASSERT_EQ(got.size(), want.size());
  for (index_t i = 0; i < n; ++i) {
    // EXPECT_EQ, not NEAR: the global-index convention must reproduce the
    // old shard-local results to the bit.
    ASSERT_EQ(got[static_cast<std::size_t>(i)],
              want[static_cast<std::size_t>(i)])
        << "i=" << i;
  }
}

TEST_P(ShardVsMulti, DotBitExact) {
  const auto [be, ndev] = GetParam();
  const index_t n = 8'191;
  const auto xs0 = harmonic_vec(n);

  jaccx::multi::context ctx(be, ndev);
  ctx.reset_clocks();
  jaccx::multi::marray<double> mx(ctx, xs0);
  const double want = jaccx::multi::parallel_reduce(
      ctx, n,
      [](index_t i, jaccx::sim::device_span<double> x) {
        return static_cast<double>(x[i]) * static_cast<double>(x[i]);
      },
      mx);

  device_set ds(be, ndev);
  ds.reset_clocks();
  array<double> ax(sharded(ds), xs0);
  const device_set_scope scope(ds);
  const double got = parallel_reduce(
      n,
      [](index_t i, const array<double>& x) {
        return static_cast<double>(x[i]) * static_cast<double>(x[i]);
      },
      ax);
  // Same decomposition, same per-device reduce engine, same combine order:
  // the sums must be bit-identical even for order-sensitive values.
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndCounts, ShardVsMulti,
    ::testing::Combine(::testing::Values(backend::cuda_a100,
                                         backend::hip_mi100),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == backend::cuda_a100
                             ? "a100_d"
                             : "mi100_d") +
             std::to_string(std::get<1>(info.param));
    });

// --- 2-D / 3-D kernels and reductions vs serial references -------------------

TEST(ShardExec, TwoDGlobalIndicesMatchReference) {
  const index_t rows = 33;
  const index_t cols = 29;
  for (int ndev : {2, 3}) {
    device_set ds(backend::oneapi_max1550, ndev);
    array2d<double> a(sharded(ds), rows, cols);
    const device_set_scope scope(ds);
    parallel_for(dims2{rows, cols},
                 [](index_t i, index_t j, array2d<double>& out, index_t r) {
                   out(i, j) = static_cast<double>(i + j * r);
                 },
                 a, rows);
    ds.sync();
    const auto got = a.to_host();
    for (index_t idx = 0; idx < rows * cols; ++idx) {
      ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(idx)],
                       static_cast<double>(idx))
          << "ndev=" << ndev;
    }
  }
}

TEST(ShardExec, ThreeDGlobalIndicesMatchReference) {
  const index_t rows = 5;
  const index_t cols = 9;
  const index_t depth = 7;
  device_set ds(backend::cuda_a100, 3);
  array3d<double> a(sharded(ds), rows, cols, depth);
  const device_set_scope scope(ds);
  parallel_for(dims3{rows, cols, depth},
               [](index_t i, index_t j, index_t k, array3d<double>& out,
                  index_t r, index_t c) {
                 out(i, j, k) = static_cast<double>(i + j * r + k * r * c);
               },
               a, rows, cols);
  ds.sync();
  const auto got = a.to_host();
  for (index_t idx = 0; idx < rows * cols * depth; ++idx) {
    ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(idx)],
                     static_cast<double>(idx));
  }
}

TEST(ShardReduce, TwoDSumExact) {
  const index_t rows = 41;
  const index_t cols = 23;
  const index_t n = rows * cols;
  device_set ds(backend::cuda_a100, 4);
  array2d<double> a(sharded(ds), iota_vec(n), rows, cols);
  const device_set_scope scope(ds);
  const double s = parallel_reduce(
      dims2{rows, cols},
      [](index_t i, index_t j, const array2d<double>& v) {
        return static_cast<double>(v(i, j));
      },
      a);
  // Integer-valued doubles: every partial sum is exact in any order.
  EXPECT_DOUBLE_EQ(s, static_cast<double>(n * (n - 1) / 2));
}

TEST(ShardReduce, ThreeDSumExact) {
  const index_t rows = 7;
  const index_t cols = 5;
  const index_t depth = 6;
  const index_t n = rows * cols * depth;
  device_set ds(backend::hip_mi100, 2);
  const auto host = iota_vec(n);
  array3d<double> a(sharded(ds), host.data(), rows, cols, depth);
  const device_set_scope scope(ds);
  const double s = parallel_reduce(
      dims3{rows, cols, depth},
      [](index_t i, index_t j, index_t k, const array3d<double>& v) {
        return static_cast<double>(v(i, j, k));
      },
      a);
  EXPECT_DOUBLE_EQ(s, static_cast<double>(n * (n - 1) / 2));
}

TEST(ShardReduce, MinMaxAcrossShardBoundaries) {
  const index_t n = 4'099;
  std::vector<double> host(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    host[static_cast<std::size_t>(i)] =
        static_cast<double>((i * 37) % 101) - 50.0;
  }
  host[1234] = -999.0;
  host[4000] = 999.0;
  device_set ds(backend::cuda_a100, 4);
  array<double> a(sharded(ds), host);
  const device_set_scope scope(ds);
  const double lo = parallel_reduce_min(
      n, [](index_t i, const array<double>& v) {
        return static_cast<double>(v[i]);
      },
      a);
  const double hi = parallel_reduce_max(
      n, [](index_t i, const array<double>& v) {
        return static_cast<double>(v[i]);
      },
      a);
  EXPECT_DOUBLE_EQ(lo, -999.0);
  EXPECT_DOUBLE_EQ(hi, 999.0);
}

// --- halo exchange at radius 1 and 2 -----------------------------------------

TEST(ShardHalo, Radius1StencilMatchesSerial) {
  const index_t n = 256;
  const auto init = iota_vec(n);
  auto serial = init;
  for (int sweep = 0; sweep < 3; ++sweep) {
    auto next = serial;
    for (index_t i = 1; i + 1 < n; ++i) {
      next[static_cast<std::size_t>(i)] =
          (serial[static_cast<std::size_t>(i - 1)] +
           serial[static_cast<std::size_t>(i)] +
           serial[static_cast<std::size_t>(i + 1)]) /
          3.0;
    }
    serial = next;
  }

  for (int ndev : {2, 4}) {
    device_set ds(backend::cuda_a100, ndev);
    array<double> u(sharded(ds), init);
    array<double> next(sharded(ds), init);
    const device_set_scope scope(ds);
    for (int sweep = 0; sweep < 3; ++sweep) {
      parallel_for(hints::stencil(1), n,
                   [n](index_t i, const array<double>& us,
                       array<double>& ns) {
                     if (i == 0 || i == n - 1) {
                       ns[i] = static_cast<double>(us[i]);
                     } else {
                       ns[i] = (static_cast<double>(us[i - 1]) +
                                static_cast<double>(us[i]) +
                                static_cast<double>(us[i + 1])) /
                               3.0;
                     }
                   },
                   u, next);
      std::swap(u, next);
    }
    ds.sync();
    const auto got = u.to_host();
    for (index_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(i)],
                       serial[static_cast<std::size_t>(i)])
          << "ndev=" << ndev << " i=" << i;
    }
  }
}

TEST(ShardHalo, Radius2StencilAndGhostGrowth) {
  // First a radius-1 sweep (ghost sized 1), then a radius-2 sweep on the
  // same arrays: the ghosts must regrow transparently.
  const index_t n = 200;
  const auto init = iota_vec(n);
  auto serial = init;
  {
    auto next = serial;
    for (index_t i = 1; i + 1 < n; ++i) {
      next[static_cast<std::size_t>(i)] =
          (serial[static_cast<std::size_t>(i - 1)] +
           serial[static_cast<std::size_t>(i + 1)]) /
          2.0;
    }
    serial = next;
  }
  {
    auto next = serial;
    for (index_t i = 2; i + 2 < n; ++i) {
      next[static_cast<std::size_t>(i)] =
          (serial[static_cast<std::size_t>(i - 2)] +
           serial[static_cast<std::size_t>(i - 1)] +
           serial[static_cast<std::size_t>(i)] +
           serial[static_cast<std::size_t>(i + 1)] +
           serial[static_cast<std::size_t>(i + 2)]) /
          5.0;
    }
    serial = next;
  }

  device_set ds(backend::cuda_a100, 3);
  array<double> u(sharded(ds), init);
  array<double> next(sharded(ds), init);
  const device_set_scope scope(ds);
  parallel_for(hints::stencil(1), n,
               [n](index_t i, const array<double>& us, array<double>& ns) {
                 ns[i] = (i == 0 || i == n - 1)
                             ? static_cast<double>(us[i])
                             : (static_cast<double>(us[i - 1]) +
                                static_cast<double>(us[i + 1])) /
                                   2.0;
               },
               u, next);
  std::swap(u, next);
  parallel_for(hints::stencil(2), n,
               [n](index_t i, const array<double>& us, array<double>& ns) {
                 if (i < 2 || i >= n - 2) {
                   ns[i] = static_cast<double>(us[i]);
                 } else {
                   ns[i] = (static_cast<double>(us[i - 2]) +
                            static_cast<double>(us[i - 1]) +
                            static_cast<double>(us[i]) +
                            static_cast<double>(us[i + 1]) +
                            static_cast<double>(us[i + 2])) /
                           5.0;
                 }
               },
               u, next);
  std::swap(u, next);
  ds.sync();
  const auto got = u.to_host();
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(i)],
                     serial[static_cast<std::size_t>(i)])
        << "i=" << i;
  }
}

TEST(ShardHalo, TwoDSlowDimensionStencil) {
  // Halo along the sharded (slow, j) dimension of a 2-D array.
  const index_t rows = 16;
  const index_t cols = 48;
  std::vector<double> init(static_cast<std::size_t>(rows * cols));
  std::iota(init.begin(), init.end(), 0.0);
  auto serial = init;
  for (index_t j = 1; j + 1 < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      const auto at = [&](index_t jj) {
        return init[static_cast<std::size_t>(i + jj * rows)];
      };
      serial[static_cast<std::size_t>(i + j * rows)] =
          (at(j - 1) + at(j) + at(j + 1)) / 3.0;
    }
  }

  device_set ds(backend::cuda_a100, 3);
  array2d<double> u(sharded(ds), init, rows, cols);
  array2d<double> out(sharded(ds), init, rows, cols);
  const device_set_scope scope(ds);
  parallel_for(hints::stencil(1), dims2{rows, cols},
               [cols](index_t i, index_t j, const array2d<double>& us,
                      array2d<double>& ns) {
                 if (j == 0 || j == cols - 1) {
                   ns(i, j) = static_cast<double>(us(i, j));
                 } else {
                   ns(i, j) = (static_cast<double>(us(i, j - 1)) +
                               static_cast<double>(us(i, j)) +
                               static_cast<double>(us(i, j + 1))) /
                              3.0;
                 }
               },
               u, out);
  ds.sync();
  const auto got = out.to_host();
  for (index_t idx = 0; idx < rows * cols; ++idx) {
    ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(idx)],
                     serial[static_cast<std::size_t>(idx)])
        << "idx=" << idx;
  }
}

TEST(ShardHalo, StencilReductionReadsGhosts) {
  const index_t n = 300;
  const auto init = iota_vec(n);
  double want = 0.0;
  for (index_t i = 1; i + 1 < n; ++i) {
    want += init[static_cast<std::size_t>(i + 1)] -
            init[static_cast<std::size_t>(i - 1)];
  }
  device_set ds(backend::cuda_a100, 4);
  array<double> u(sharded(ds), init);
  const device_set_scope scope(ds);
  const double got = parallel_reduce(
      hints::stencil(1), n,
      [n](index_t i, const array<double>& us) {
        if (i == 0 || i == n - 1) {
          return 0.0;
        }
        return static_cast<double>(us[i + 1]) -
               static_cast<double>(us[i - 1]);
      },
      u);
  EXPECT_DOUBLE_EQ(got, want);
}

// --- measured rebalance under skew -------------------------------------------

TEST(ShardRebalance, SkewShiftsWeightsAndKeepsValuesExact) {
  const index_t n = 1 << 14;
  device_set ds(backend::cuda_a100, 2);
  ds.set_slowdown(0, 2.0);
  array<double> x(sharded(ds), std::vector<double>(
                                   static_cast<std::size_t>(n), 1.0));
  array<double> y(sharded(ds), iota_vec(n));
  const device_set_scope scope(ds);
  const int launches = 4;
  for (int k = 0; k < launches; ++k) {
    parallel_for(n,
                 [](index_t i, array<double>& xs, const array<double>& ys) {
                   xs[i] += 2.0 * static_cast<double>(ys[i]);
                 },
                 x, y);
  }
  ds.sync();
  // The 2x-slow device 0 must have been measured slower and given the
  // smaller share.
  EXPECT_GT(ds.rate(1), ds.rate(0));
  EXPECT_LT(ds.weights()[0], ds.weights()[1]);
  EXPECT_LT(ds.chunk(n, 0).size(), n / 2);
  // Resharding moved cells between devices; every value must survive.
  const auto got = x.to_host();
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(i)],
                     1.0 + 2.0 * launches * static_cast<double>(i))
        << "i=" << i;
  }
}

TEST(ShardRebalance, ManualWeightsDisableRebalance) {
  const index_t n = 1 << 12;
  device_set ds(backend::cuda_a100, 2);
  ds.set_weights({0.5, 0.5});
  ds.set_slowdown(0, 4.0);
  array<double> x(sharded(ds), iota_vec(n));
  const device_set_scope scope(ds);
  for (int k = 0; k < 3; ++k) {
    parallel_for(n, [](index_t i, array<double>& xs) { xs[i] += 1.0; }, x);
  }
  ds.sync();
  EXPECT_DOUBLE_EQ(ds.weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(ds.weights()[1], 0.5);
}

// --- shard buffers ride the mem pool -----------------------------------------

TEST(ShardPool, MultiShardBuffersRecycleSteadyState) {
  const scoped_mode pooled(pool_mode::bucket);
  const index_t n = 4096;
  jaccx::multi::context ctx(backend::cuda_a100, 2);
  ctx.reset_clocks();
  { // Warm the pool with one allocate/free cycle.
    jaccx::multi::marray<double> warm(ctx, iota_vec(n), /*ghost=*/1);
  }
  const std::uint64_t misses_before = total_pool_misses();
  {
    jaccx::multi::marray<double> again(ctx, iota_vec(n), /*ghost=*/1);
    EXPECT_EQ(again.gather(), iota_vec(n));
  }
  // Steady state: every shard buffer comes back from the pool, zero new
  // backing-store allocations.
  EXPECT_EQ(total_pool_misses(), misses_before);
  jaccx::mem::drain();
}

TEST(ShardPool, AutoShardPiecesRecycleSteadyState) {
  const scoped_mode pooled(pool_mode::bucket);
  const index_t n = 8192;
  device_set ds(backend::cuda_a100, 4);
  {
    array<double> warm(sharded(ds), iota_vec(n));
    const device_set_scope scope(ds);
    parallel_for(n, [](index_t i, array<double>& v) { v[i] += 1.0; }, warm);
    ds.sync();
  }
  const std::uint64_t misses_before = total_pool_misses();
  {
    array<double> again(sharded(ds), iota_vec(n));
    const device_set_scope scope(ds);
    parallel_for(n, [](index_t i, array<double>& v) { v[i] += 1.0; }, again);
    ds.sync();
  }
  EXPECT_EQ(total_pool_misses(), misses_before);
  jaccx::mem::drain();
}

// --- dist_cg placement policies ----------------------------------------------

TEST(DistPlacement, RoundRobinMatchesStaticChunk) {
  jaccx::dist::communicator comm(4, "a100");
  jaccx::dist::tridiag_cg solver(comm, 1000);
  for (int r = 0; r < 4; ++r) {
    const auto got = solver.rows_of(r);
    const auto want = jaccx::pool::static_chunk(1000, 4, r);
    EXPECT_EQ(got.begin, want.begin) << "r=" << r;
    EXPECT_EQ(got.end, want.end) << "r=" << r;
  }
}

TEST(DistPlacement, ColdMeasuredRegistryReproducesRoundRobin) {
  clear_achieved_rates();
  jaccx::dist::communicator comm(3, "a100");
  jaccx::dist::tridiag_cg solver(comm, 997,
                                 jaccx::dist::placement::measured());
  for (int r = 0; r < 3; ++r) {
    const auto want = jaccx::pool::static_chunk(997, 3, r);
    EXPECT_EQ(solver.rows_of(r).begin, want.begin) << "r=" << r;
    EXPECT_EQ(solver.rows_of(r).end, want.end) << "r=" << r;
  }
}

TEST(DistPlacement, MeasuredRatesShiftRowsAndSolverStillConverges) {
  clear_achieved_rates();
  note_achieved_rate("a100#0", 40.0, 0.0);
  note_achieved_rate("a100#1", 10.0, 0.0);
  jaccx::dist::communicator comm(2, "a100");
  jaccx::dist::tridiag_cg solver(comm, 1000,
                                 jaccx::dist::placement::measured());
  EXPECT_EQ(solver.rows_of(0).size(), 800);
  EXPECT_EQ(solver.rows_of(1).size(), 200);

  const index_t n = solver.size();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x;
  const auto res = solver.solve(b, x);
  EXPECT_TRUE(res.converged);
  // Residual check against the tridiagonal A = [1 4 1].
  for (index_t i = 0; i < n; ++i) {
    const double left = i > 0 ? x[static_cast<std::size_t>(i - 1)] : 0.0;
    const double right = i + 1 < n ? x[static_cast<std::size_t>(i + 1)] : 0.0;
    EXPECT_NEAR(4.0 * x[static_cast<std::size_t>(i)] + left + right, 1.0,
                1e-8);
  }
  clear_achieved_rates();
}

// --- error paths -------------------------------------------------------------

TEST(ShardErrors, UnshardedArrayInScopeRejected) {
  device_set ds(backend::cuda_a100, 2);
  array<double> plain(16);
  const device_set_scope scope(ds);
  EXPECT_THROW(
      parallel_for(16, [](index_t i, array<double>& v) { v[i] = 1.0; },
                   plain),
      usage_error);
}

TEST(ShardErrors, ArrayFromForeignSetRejected) {
  device_set ds1(backend::cuda_a100, 2);
  device_set ds2(backend::cuda_a100, 2);
  array<double> a(sharded(ds1), 64);
  const device_set_scope scope(ds2);
  EXPECT_THROW(
      parallel_for(64, [](index_t i, array<double>& v) { v[i] = 1.0; }, a),
      usage_error);
}

} // namespace
} // namespace jacc
