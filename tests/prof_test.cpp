// Tests for the jaccx::prof profiling layer: mode parsing, KokkosP-style
// hook ordering/nesting, counter correctness across schedules, trace
// validity across real and simulated backends, and the disabled-path
// no-allocation guard.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "cg/solver.hpp"
#include "core/jacc.hpp"
#include "prof/prof.hpp"
#include "threadpool/thread_pool.hpp"

namespace jaccx::prof {
namespace {

/// Restores the profiler to off and drops collected events around a test.
class prof_sandbox {
public:
  prof_sandbox() {
    set_mode(mode_off);
    reset();
  }
  ~prof_sandbox() {
    set_mode(mode_off);
    reset();
  }
};

TEST(Prof, ParseModeSpec) {
  EXPECT_EQ(parse_mode_spec("off"), mode_off);
  EXPECT_EQ(parse_mode_spec("collect"), mode_collect);
  EXPECT_EQ(parse_mode_spec("summary"), mode_summary | mode_collect);
  EXPECT_EQ(parse_mode_spec("trace"), mode_trace | mode_collect);
  EXPECT_EQ(parse_mode_spec("summary,trace"),
            mode_summary | mode_trace | mode_collect);
  EXPECT_FALSE(parse_mode_spec("bogus").has_value());
  EXPECT_FALSE(parse_mode_spec("summary,bogus").has_value());
}

/// Tool that logs every hook invocation as a compact string.
struct hook_log {
  std::vector<std::string> events;

  static callbacks make(hook_log* self) {
    callbacks cb;
    cb.user = self;
    cb.begin_parallel_for = [](void* u, const kernel_info& info,
                               std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("begin_for:" +
                                                  std::string(info.name));
    };
    cb.end_parallel_for = [](void* u, std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("end_for");
    };
    cb.begin_parallel_reduce = [](void* u, const kernel_info& info,
                                  std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("begin_reduce:" +
                                                  std::string(info.name));
    };
    cb.end_parallel_reduce = [](void* u, std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("end_reduce");
    };
    cb.region_push = [](void* u, std::string_view name) {
      static_cast<hook_log*>(u)->events.push_back("push:" +
                                                  std::string(name));
    };
    cb.region_pop = [](void* u) {
      static_cast<hook_log*>(u)->events.push_back("pop");
    };
    cb.alloc = [](void* u, std::string_view, std::uint64_t bytes) {
      static_cast<hook_log*>(u)->events.push_back("alloc:" +
                                                  std::to_string(bytes));
    };
    cb.free_ = [](void* u, std::uint64_t bytes) {
      static_cast<hook_log*>(u)->events.push_back("free:" +
                                                  std::to_string(bytes));
    };
    return cb;
  }
};

TEST(Prof, HookOrderingAndNesting) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::serial);

  hook_log log;
  const std::uint64_t id = register_callbacks(hook_log::make(&log));
  EXPECT_TRUE(enabled()); // a registered tool arms the gate by itself

  {
    scoped_region outer("outer");
    jacc::parallel_for(jacc::hints{.name = "k1"}, 4,
                       [](jacc::index_t) {});
    const double s = jacc::parallel_reduce(
        jacc::hints{.name = "k2"}, 4,
        [](jacc::index_t) { return 1.0; });
    EXPECT_DOUBLE_EQ(s, 4.0);
  }
  {
    jacc::array<double> a(8); // alloc + free hooks around the block
  }
  unregister_callbacks(id);
  EXPECT_FALSE(enabled());
  jacc::parallel_for(jacc::hints{.name = "after"}, 4,
                     [](jacc::index_t) {});

  const std::vector<std::string> expect = {
      "begin_for:k1", "end_for",  "begin_reduce:k2", "end_reduce",
      "pop",          "alloc:64", "free:64",
  };
  // "push:outer" precedes everything.
  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.events.front(), "push:outer");
  EXPECT_EQ(std::vector<std::string>(log.events.begin() + 1,
                                     log.events.end()),
            expect);
}

TEST(Prof, SummaryCountsKernelsAcrossSchedules) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::threads);
  set_mode(mode_collect);

  auto& pool = jaccx::pool::default_pool();
  const jaccx::pool::schedule saved = pool.current_schedule();
  for (const auto kind : {jaccx::pool::schedule_kind::static_chunks,
                          jaccx::pool::schedule_kind::dynamic_chunks}) {
    pool.set_schedule({kind, 0});
    jacc::parallel_for(
        jacc::hints{.name = "prof.k", .flops_per_index = 2.0,
                    .bytes_per_index = 8.0},
        1 << 12, [](jacc::index_t) {});
  }
  pool.set_schedule(saved);

  bool found = false;
  for (const auto& k : aggregate_kernels()) {
    if (k.name == "prof.k") {
      found = true;
      EXPECT_EQ(k.count, 2u);
      EXPECT_EQ(k.units, 2u << 12);
      EXPECT_EQ(k.backend, "threads");
      EXPECT_GT(k.total_us, 0.0);
      EXPECT_LE(k.min_us, k.max_us);
    }
  }
  EXPECT_TRUE(found);

  const std::string text = summary_text();
  EXPECT_NE(text.find("prof.k"), std::string::npos);
  EXPECT_NE(text.find("threads"), std::string::npos);
}

TEST(Prof, PoolCountersStaticVsDynamic) {
  prof_sandbox sandbox;
  set_mode(mode_collect);

  const jacc::index_t n = 1 << 10;
  // Static region: exactly one chunk per worker (4).  Dynamic with grain
  // 16 over 1024 indices: exactly 64 claimed chunks across workers.
  const std::uint64_t expect_chunks = 4 + (n + 15) / 16;

  std::uint64_t live_busy_ns = 0;
  {
    jaccx::pool::thread_pool pool(4);
    pool.set_schedule({jaccx::pool::schedule_kind::static_chunks, 0});
    pool.parallel_for_index(n, [](jacc::index_t) {});
    pool.set_schedule({jaccx::pool::schedule_kind::dynamic_chunks, 16});
    pool.parallel_for_index(n, [](jacc::index_t) {});

    const pool_stats live = pool.stats();
    EXPECT_EQ(live.width, 4u);
    EXPECT_EQ(live.regions, 2u);
    ASSERT_EQ(live.workers.size(), 4u);
    std::uint64_t live_chunks = 0;
    for (const auto& w : live.workers) {
      live_chunks += w.chunks;
      live_busy_ns += w.busy_ns;
    }
    EXPECT_EQ(live_chunks, expect_chunks);
    EXPECT_GT(live_busy_ns, 0u);
  }
  // The pool froze its final snapshot at destruction.  aggregate_pools()
  // also lists any other live pool (e.g. the default one, if earlier tests
  // in this process ran threads-backend kernels), so find this test's pool
  // by its distinctive signature rather than by position.
  bool frozen_found = false;
  for (const pool_stats& p : aggregate_pools()) {
    std::uint64_t chunks = 0;
    for (const auto& w : p.workers) {
      chunks += w.chunks;
    }
    if (p.width == 4 && p.regions == 2 && p.schedule == "dynamic,16" &&
        chunks == expect_chunks) {
      frozen_found = true;
    }
  }
  EXPECT_TRUE(frozen_found);
}

/// Minimal structural JSON validator: object/array/string/number nesting.
/// Returns false on the first malformed token.  (No external JSON dep in
/// the image, and the trace format is machine-generated and regular.)
bool json_is_valid(const std::string& s) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  };
  std::vector<char> stack;
  bool expect_value = true;
  skip_ws();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '{' || c == '[') {
      stack.push_back(c);
      ++i;
      expect_value = true;
    } else if (c == '}' || c == ']') {
      if (stack.empty()) {
        return false;
      }
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}' && open != '{') || (c == ']' && open != '[')) {
        return false;
      }
      ++i;
      expect_value = false;
    } else if (c == '"') {
      ++i;
      while (i < s.size() && s[i] != '"') {
        i += s[i] == '\\' ? 2 : 1;
      }
      if (i >= s.size()) {
        return false;
      }
      ++i;
      expect_value = false;
    } else if (c == ',' || c == ':') {
      ++i;
      expect_value = true;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
               c == '.' || c == '+') {
      ++i;
      expect_value = false;
    } else {
      return false;
    }
    skip_ws();
  }
  return stack.empty() && !expect_value;
}

TEST(Prof, TraceJsonIsValidAndMergesBackends) {
  prof_sandbox sandbox;
  set_mode(mode_collect | mode_trace);

  {
    jacc::scoped_backend sb(jacc::backend::threads);
    jacc::parallel_for(jacc::hints{.name = "trace.threads_kernel"}, 64,
                       [](jacc::index_t) {});
  }
  {
    jacc::scoped_backend sb(jacc::backend::cuda_a100);
    jacc::array<double> x(256);
    jacc::parallel_for(jacc::hints{.name = "trace.sim_kernel"}, 256,
                       [](jacc::index_t i, jacc::array<double>& x_) {
                         x_[i] = 1.0;
                       },
                       x);
  }

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json)) << json.substr(0, 400);
  // Host wall-clock kernels from the threads backend...
  EXPECT_NE(json.find("trace.threads_kernel"), std::string::npos);
  // ...and the simulated device's own timeline, as a separate process.
  EXPECT_NE(json.find("\"sim:a100\""), std::string::npos);
  EXPECT_NE(json.find("trace.sim_kernel"), std::string::npos);
  EXPECT_NE(json.find("sim.kernel"), std::string::npos);
}

TEST(Prof, DisabledDispatchLeavesNoTrace) {
  prof_sandbox sandbox;
  ASSERT_FALSE(enabled());

  // Rings are created lazily on a thread's first *enabled* event; with the
  // profiler off, a dispatch must not create one (the no-allocation
  // guard — the remaining disabled-path cost is the one gate branch, held
  // within noise by the abl_dispatch_overhead numbers in EXPERIMENTS.md).
  const std::size_t rings_before = debug_ring_count();
  jacc::scoped_backend sb(jacc::backend::serial);
  for (int rep = 0; rep < 100; ++rep) {
    jacc::parallel_for(jacc::hints{.name = "dark"}, 16,
                       [](jacc::index_t) {});
  }
  EXPECT_EQ(debug_ring_count(), rings_before);
  for (const auto& k : aggregate_kernels()) {
    EXPECT_NE(k.name, "dark");
  }
}

TEST(Prof, RegionsNestInCgIteration) {
  prof_sandbox sandbox;
  set_mode(mode_collect);
  jacc::scoped_backend sb(jacc::backend::serial);

  jaccx::cg::paper_state st(128);
  jaccx::cg::paper_iteration(st);

  bool region_found = false;
  double region_us = 0.0;
  double kernels_us = 0.0;
  for (const auto& k : aggregate_kernels()) {
    if (k.kind == construct::region && k.name == "cg.iteration") {
      region_found = true;
      EXPECT_EQ(k.count, 1u);
      region_us = k.total_us;
    } else if (k.name == "cg.dot" || k.name == "cg.axpy" ||
               k.name == "cg.copy" || k.name == "jacc.tridiag_matvec") {
      kernels_us += k.total_us;
    }
  }
  EXPECT_TRUE(region_found);
  // The enclosing region covers at least its nested kernels' time.
  EXPECT_GE(region_us, kernels_us * 0.5);
  EXPECT_GT(kernels_us, 0.0);
}

} // namespace
} // namespace jaccx::prof
