// Tests for the jaccx::prof profiling layer: mode parsing, KokkosP-style
// hook ordering/nesting, counter correctness across schedules, trace
// validity across real and simulated backends, and the disabled-path
// no-allocation guard.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#ifndef _WIN32
#include <dlfcn.h>
#include <unistd.h>
#endif

#include "cg/solver.hpp"
#include "core/jacc.hpp"
#include "dist/comm.hpp"
#include "prof/prof.hpp"
#include "prof/tools.hpp"
#include "threadpool/thread_pool.hpp"

namespace jaccx::prof {
namespace {

/// Restores the profiler to off and drops collected events around a test.
class prof_sandbox {
public:
  prof_sandbox() {
    set_mode(mode_off);
    reset();
  }
  ~prof_sandbox() {
    set_mode(mode_off);
    reset();
  }
};

TEST(Prof, ParseModeSpec) {
  EXPECT_EQ(parse_mode_spec("off"), mode_off);
  EXPECT_EQ(parse_mode_spec("collect"), mode_collect);
  EXPECT_EQ(parse_mode_spec("summary"), mode_summary | mode_collect);
  EXPECT_EQ(parse_mode_spec("trace"), mode_trace | mode_collect);
  EXPECT_EQ(parse_mode_spec("summary,trace"),
            mode_summary | mode_trace | mode_collect);
  EXPECT_EQ(parse_mode_spec("roofline"), mode_roofline | mode_collect);
  EXPECT_EQ(parse_mode_spec("roofline,summary"),
            mode_roofline | mode_summary | mode_collect);
  EXPECT_FALSE(parse_mode_spec("bogus").has_value());
  EXPECT_FALSE(parse_mode_spec("summary,bogus").has_value());
}

TEST(Prof, TracePathPidSubstitution) {
#ifndef _WIN32
  const std::string pid = std::to_string(static_cast<long>(getpid()));
  EXPECT_EQ(expand_trace_path("trace_%p.json"),
            "trace_" + pid + ".json");
  EXPECT_EQ(expand_trace_path("%p%p"), pid + pid);
  EXPECT_EQ(expand_trace_path("plain.json"), "plain.json");
  EXPECT_EQ(expand_trace_path("ends_with_%"), "ends_with_%");
#endif
}

/// Tool that logs every hook invocation as a compact string.
struct hook_log {
  std::vector<std::string> events;

  static callbacks make(hook_log* self) {
    callbacks cb;
    cb.user = self;
    cb.begin_parallel_for = [](void* u, const kernel_info& info,
                               std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("begin_for:" +
                                                  std::string(info.name));
    };
    cb.end_parallel_for = [](void* u, std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("end_for");
    };
    cb.begin_parallel_reduce = [](void* u, const kernel_info& info,
                                  std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("begin_reduce:" +
                                                  std::string(info.name));
    };
    cb.end_parallel_reduce = [](void* u, std::uint64_t) {
      static_cast<hook_log*>(u)->events.push_back("end_reduce");
    };
    cb.region_push = [](void* u, std::string_view name) {
      static_cast<hook_log*>(u)->events.push_back("push:" +
                                                  std::string(name));
    };
    cb.region_pop = [](void* u) {
      static_cast<hook_log*>(u)->events.push_back("pop");
    };
    cb.alloc = [](void* u, std::string_view, std::uint64_t bytes) {
      static_cast<hook_log*>(u)->events.push_back("alloc:" +
                                                  std::to_string(bytes));
    };
    cb.free_ = [](void* u, std::uint64_t bytes) {
      static_cast<hook_log*>(u)->events.push_back("free:" +
                                                  std::to_string(bytes));
    };
    return cb;
  }
};

TEST(Prof, HookOrderingAndNesting) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::serial);

  hook_log log;
  const std::uint64_t id = register_callbacks(hook_log::make(&log));
  EXPECT_TRUE(enabled()); // a registered tool arms the gate by itself

  {
    scoped_region outer("outer");
    jacc::parallel_for(jacc::hints{.name = "k1"}, 4,
                       [](jacc::index_t) {});
    const double s = jacc::parallel_reduce(
        jacc::hints{.name = "k2"}, 4,
        [](jacc::index_t) { return 1.0; });
    EXPECT_DOUBLE_EQ(s, 4.0);
  }
  {
    jacc::array<double> a(8); // alloc + free hooks around the block
  }
  unregister_callbacks(id);
  EXPECT_FALSE(enabled());
  jacc::parallel_for(jacc::hints{.name = "after"}, 4,
                     [](jacc::index_t) {});

  const std::vector<std::string> expect = {
      "begin_for:k1", "end_for",  "begin_reduce:k2", "end_reduce",
      "pop",          "alloc:64", "free:64",
  };
  // "push:outer" precedes everything.
  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.events.front(), "push:outer");
  EXPECT_EQ(std::vector<std::string>(log.events.begin() + 1,
                                     log.events.end()),
            expect);
}

TEST(Prof, SummaryCountsKernelsAcrossSchedules) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::threads);
  set_mode(mode_collect);

  auto& pool = jaccx::pool::default_pool();
  const jaccx::pool::schedule saved = pool.current_schedule();
  for (const auto kind : {jaccx::pool::schedule_kind::static_chunks,
                          jaccx::pool::schedule_kind::dynamic_chunks}) {
    pool.set_schedule({kind, 0});
    jacc::parallel_for(
        jacc::hints{.name = "prof.k", .flops_per_index = 2.0,
                    .bytes_per_index = 8.0},
        1 << 12, [](jacc::index_t) {});
  }
  pool.set_schedule(saved);

  bool found = false;
  for (const auto& k : aggregate_kernels()) {
    if (k.name == "prof.k") {
      found = true;
      EXPECT_EQ(k.count, 2u);
      EXPECT_EQ(k.units, 2u << 12);
      EXPECT_EQ(k.backend, "threads");
      EXPECT_GT(k.total_us, 0.0);
      EXPECT_LE(k.min_us, k.max_us);
    }
  }
  EXPECT_TRUE(found);

  const std::string text = summary_text();
  EXPECT_NE(text.find("prof.k"), std::string::npos);
  EXPECT_NE(text.find("threads"), std::string::npos);
}

TEST(Prof, PoolCountersStaticVsDynamic) {
  prof_sandbox sandbox;
  set_mode(mode_collect);

  const jacc::index_t n = 1 << 10;
  // Static region: exactly one chunk per worker (4).  Dynamic with grain
  // 16 over 1024 indices: exactly 64 claimed chunks across workers.
  const std::uint64_t expect_chunks = 4 + (n + 15) / 16;

  std::uint64_t live_busy_ns = 0;
  {
    jaccx::pool::thread_pool pool(4);
    pool.set_schedule({jaccx::pool::schedule_kind::static_chunks, 0});
    pool.parallel_for_index(n, [](jacc::index_t) {});
    pool.set_schedule({jaccx::pool::schedule_kind::dynamic_chunks, 16});
    pool.parallel_for_index(n, [](jacc::index_t) {});

    const pool_stats live = pool.stats();
    EXPECT_EQ(live.width, 4u);
    EXPECT_EQ(live.regions, 2u);
    ASSERT_EQ(live.workers.size(), 4u);
    std::uint64_t live_chunks = 0;
    for (const auto& w : live.workers) {
      live_chunks += w.chunks;
      live_busy_ns += w.busy_ns;
    }
    EXPECT_EQ(live_chunks, expect_chunks);
    EXPECT_GT(live_busy_ns, 0u);
  }
  // The pool froze its final snapshot at destruction.  aggregate_pools()
  // also lists any other live pool (e.g. the default one, if earlier tests
  // in this process ran threads-backend kernels), so find this test's pool
  // by its distinctive signature rather than by position.
  bool frozen_found = false;
  for (const pool_stats& p : aggregate_pools()) {
    std::uint64_t chunks = 0;
    for (const auto& w : p.workers) {
      chunks += w.chunks;
    }
    if (p.width == 4 && p.regions == 2 && p.schedule == "dynamic,16" &&
        chunks == expect_chunks) {
      frozen_found = true;
    }
  }
  EXPECT_TRUE(frozen_found);
}

/// Minimal structural JSON validator: object/array/string/number nesting.
/// Returns false on the first malformed token.  (No external JSON dep in
/// the image, and the trace format is machine-generated and regular.)
bool json_is_valid(const std::string& s) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  };
  std::vector<char> stack;
  bool expect_value = true;
  skip_ws();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '{' || c == '[') {
      stack.push_back(c);
      ++i;
      expect_value = true;
    } else if (c == '}' || c == ']') {
      if (stack.empty()) {
        return false;
      }
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}' && open != '{') || (c == ']' && open != '[')) {
        return false;
      }
      ++i;
      expect_value = false;
    } else if (c == '"') {
      ++i;
      while (i < s.size() && s[i] != '"') {
        i += s[i] == '\\' ? 2 : 1;
      }
      if (i >= s.size()) {
        return false;
      }
      ++i;
      expect_value = false;
    } else if (c == ',' || c == ':') {
      ++i;
      expect_value = true;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
               c == '.' || c == '+') {
      ++i;
      expect_value = false;
    } else {
      return false;
    }
    skip_ws();
  }
  return stack.empty() && !expect_value;
}

TEST(Prof, TraceJsonIsValidAndMergesBackends) {
  prof_sandbox sandbox;
  set_mode(mode_collect | mode_trace);

  {
    jacc::scoped_backend sb(jacc::backend::threads);
    jacc::parallel_for(jacc::hints{.name = "trace.threads_kernel"}, 64,
                       [](jacc::index_t) {});
  }
  {
    jacc::scoped_backend sb(jacc::backend::cuda_a100);
    jacc::array<double> x(256);
    jacc::parallel_for(jacc::hints{.name = "trace.sim_kernel"}, 256,
                       [](jacc::index_t i, jacc::array<double>& x_) {
                         x_[i] = 1.0;
                       },
                       x);
  }

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json)) << json.substr(0, 400);
  // Host wall-clock kernels from the threads backend...
  EXPECT_NE(json.find("trace.threads_kernel"), std::string::npos);
  // ...and the simulated device's own timeline, as a separate process.
  EXPECT_NE(json.find("\"sim:a100\""), std::string::npos);
  EXPECT_NE(json.find("trace.sim_kernel"), std::string::npos);
  EXPECT_NE(json.find("sim.kernel"), std::string::npos);
}

TEST(Prof, DisabledDispatchLeavesNoTrace) {
  prof_sandbox sandbox;
  ASSERT_FALSE(enabled());

  // Rings are created lazily on a thread's first *enabled* event; with the
  // profiler off, a dispatch must not create one (the no-allocation
  // guard — the remaining disabled-path cost is the one gate branch, held
  // within noise by the abl_dispatch_overhead numbers in EXPERIMENTS.md).
  const std::size_t rings_before = debug_ring_count();
  jacc::scoped_backend sb(jacc::backend::serial);
  for (int rep = 0; rep < 100; ++rep) {
    jacc::parallel_for(jacc::hints{.name = "dark"}, 16,
                       [](jacc::index_t) {});
  }
  // The new async hook sites must be just as dark: queue submission, graph
  // replay, future waits, and dist collectives with the profiler off.
  {
    jacc::queue q("dark.q");
    jacc::array<double> x(64), y(64);
    jacc::parallel_for(q, 64,
                       [](jacc::index_t i, jacc::array<double>& v) {
                         v[i] = 1.0;
                       },
                       x);
    auto f = q.parallel_reduce(
        64,
        [](jacc::index_t i, const jacc::array<double>& a,
           const jacc::array<double>& b) -> double { return a[i] * b[i]; },
        x, y);
    (void)f.get();
    q.begin_capture();
    jacc::parallel_for(q, 64,
                       [](jacc::index_t i, jacc::array<double>& v) {
                         v[i] = 2.0;
                       },
                       y);
    jacc::graph g = q.end_capture();
    g.launch(q);
    q.synchronize();
  }
  {
    jaccx::dist::communicator comm(2, "a100");
    std::vector<double> a_out(8, 1.0), b_out(8, 2.0), a_in(8), b_in(8);
    comm.exchange(0, a_out.data(), a_in.data(), 1, b_out.data(),
                  b_in.data(), 8);
  }
  EXPECT_EQ(debug_ring_count(), rings_before);
  for (const auto& k : aggregate_kernels()) {
    EXPECT_NE(k.name, "dark");
  }
  const async_stats a = aggregate_async();
  EXPECT_EQ(a.queue_submits, 0u);
  EXPECT_EQ(a.queue_tasks, 0u);
  EXPECT_EQ(a.graph_replays, 0u);
  EXPECT_EQ(a.future_waits, 0u);
  EXPECT_TRUE(a.comms.empty());
  const auto hist = future_wait_histogram();
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::uint64_t{0}), 0u);
}

TEST(Prof, RooflineMathMatchesHandComputed) {
  prof_sandbox sandbox;
  const roof_rates saved = host_roof();
  set_host_roof({100.0, 50.0}); // ridge = 0.5 flop/byte
  set_mode(mode_collect | mode_roofline);

  {
    // 1024 indices x (4 flop, 32 B) -> intensity 0.125, memory-bound,
    // attainable = min(50, 0.125 * 100) = 12.5 GF/s.
    jacc::scoped_backend sb(jacc::backend::serial);
    jacc::parallel_for(
        jacc::hints{.name = "roof.k", .flops_per_index = 4.0,
                    .bytes_per_index = 32.0},
        1024, [](jacc::index_t) {});
  }
  {
    jacc::scoped_backend sb(jacc::backend::cuda_a100);
    jacc::array<double> x(4096);
    jacc::parallel_for(jacc::hints{.name = "roof.sim"}, 4096,
                       [](jacc::index_t i, jacc::array<double>& x_) {
                         x_[i] = 2.0 * static_cast<double>(i);
                       },
                       x);
  }

  bool host_found = false;
  bool sim_found = false;
  for (const auto& r : aggregate_roofline()) {
    if (r.name == "roof.k" && r.target == "serial") {
      host_found = true;
      EXPECT_FALSE(r.simulated);
      EXPECT_EQ(r.count, 1u);
      EXPECT_DOUBLE_EQ(r.flops, 4096.0);
      EXPECT_DOUBLE_EQ(r.bytes, 32768.0);
      EXPECT_DOUBLE_EQ(r.intensity, 0.125);
      EXPECT_DOUBLE_EQ(r.peak.gbps, 100.0);
      EXPECT_DOUBLE_EQ(r.peak.gflops, 50.0);
      EXPECT_DOUBLE_EQ(r.ridge, 0.5);
      EXPECT_TRUE(r.memory_bound);
      EXPECT_DOUBLE_EQ(r.attainable_gflops, 12.5);
      EXPECT_GT(r.achieved_gbps, 0.0);
      // Cross-check the GB/s <-> GF/s identity: both derive from the same
      // time, so achieved_gflops / achieved_gbps == intensity.
      EXPECT_NEAR(r.achieved_gflops / r.achieved_gbps, r.intensity, 1e-9);
      EXPECT_NEAR(r.pct_of_roof,
                  100.0 * r.achieved_gflops / r.attainable_gflops, 1e-9);
    }
    if (r.target == "a100" && r.simulated) {
      sim_found = true;
      EXPECT_DOUBLE_EQ(r.peak.gbps, 1400.0);
      EXPECT_DOUBLE_EQ(r.peak.gflops, 9700.0);
      EXPECT_GT(r.time_us, 0.0);
    }
  }
  EXPECT_TRUE(host_found);
  EXPECT_TRUE(sim_found);

  const auto a100 = model_roof("a100");
  ASSERT_TRUE(a100.has_value());
  EXPECT_DOUBLE_EQ(a100->gbps, 1400.0);
  EXPECT_DOUBLE_EQ(a100->gflops, 9700.0);
  EXPECT_FALSE(model_roof("nonesuch").has_value());

  const std::string text = roofline_text();
  EXPECT_NE(text.find("jaccx::prof roofline"), std::string::npos);
  EXPECT_NE(text.find("roof.k"), std::string::npos);

  set_host_roof(saved);
}

TEST(Prof, AsyncQueueSubmitTaskPairing) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::threads);
  set_mode(mode_collect | mode_trace);

  constexpr int submits = 8;
  {
    jacc::queue q("pair.q");
    jacc::array<double> x(256);
    for (int rep = 0; rep < submits; ++rep) {
      jacc::parallel_for(q, 256,
                         [](jacc::index_t i, jacc::array<double>& x_) {
                           x_[i] += 1.0;
                         },
                         x);
    }
    q.synchronize();
  }

  const async_stats a = aggregate_async();
  if (jacc::queue_lane_count() > 1) {
    // Truly async config: every submission was recorded, and each executed
    // task span pairs back to a submission (tasks can be fewer only if a
    // lane-full degrade ran some inline).
    EXPECT_GE(a.queue_submits, static_cast<std::uint64_t>(submits));
  }
  EXPECT_LE(a.queue_tasks, a.queue_submits);
  if (a.queue_tasks > 0) {
    EXPECT_GT(a.queue_task_us, 0.0);
    ASSERT_FALSE(a.lanes.empty());
    std::uint64_t lane_tasks = 0;
    for (const auto& l : a.lanes) {
      EXPECT_NE(l.label.find("queue.task.lane"), std::string::npos);
      lane_tasks += l.tasks;
    }
    EXPECT_EQ(lane_tasks, a.queue_tasks);
    // Submission and execution are linked in the trace by flow events.
    const std::string json = chrome_trace_json();
    EXPECT_NE(json.find("queue.flow"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  }
}

TEST(Prof, GraphReplaySpansCounted) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::threads);
  set_mode(mode_collect);

  jacc::queue q("graph.q");
  jacc::array<double> x(128), y(128);
  jacc::parallel_for(q, 128,
                     [](jacc::index_t i, jacc::array<double>& v) {
                       v[i] = 1.0;
                     },
                     x);
  q.begin_capture();
  jacc::parallel_for(q, 128,
                     [](jacc::index_t i, double alpha,
                        const jacc::array<double>& x_,
                        jacc::array<double>& y_) {
                       y_[i] += alpha * x_[i];
                     },
                     2.0, x, y);
  jacc::graph g = q.end_capture();
  constexpr int replays = 3;
  for (int rep = 0; rep < replays; ++rep) {
    g.launch(q);
  }
  q.synchronize();

  const async_stats a = aggregate_async();
  EXPECT_EQ(a.graph_replays, static_cast<std::uint64_t>(replays));
  // Each replay walks the same DAG, so node/kernel totals are exact
  // multiples of the replay count.
  EXPECT_GE(a.graph_nodes, static_cast<std::uint64_t>(replays));
  EXPECT_EQ(a.graph_nodes % a.graph_replays, 0u);
  EXPECT_GE(a.graph_kernels, static_cast<std::uint64_t>(replays));
  EXPECT_EQ(a.graph_kernels % a.graph_replays, 0u);
  EXPECT_GT(a.graph_replay_us, 0.0);

  const std::string text = summary_text();
  EXPECT_NE(text.find("graph replays"), std::string::npos);
}

TEST(Prof, FutureWaitLatencyRecorded) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::threads);
  set_mode(mode_collect);

  jacc::queue q("future.q");
  jacc::array<double> x(512), y(512);
  jacc::parallel_for(q, 512,
                     [](jacc::index_t i, jacc::array<double>& a,
                        jacc::array<double>& b) {
                       a[i] = 1.0;
                       b[i] = 2.0;
                     },
                     x, y);
  auto f1 = q.parallel_reduce(
      512,
      [](jacc::index_t i, const jacc::array<double>& a,
         const jacc::array<double>& b) { return a[i] * b[i]; },
      x, y);
  EXPECT_DOUBLE_EQ(f1.get(), 1024.0);
  auto f2 = q.parallel_reduce(
      512,
      [](jacc::index_t i, const jacc::array<double>& a) -> double {
        return a[i];
      },
      x);
  EXPECT_DOUBLE_EQ(f2.get(), 512.0);
  q.synchronize();

  const async_stats a = aggregate_async();
  EXPECT_EQ(a.future_waits, 2u);
  EXPECT_GE(a.future_wait_us, 0.0);
  const auto hist = future_wait_histogram();
  ASSERT_EQ(hist.size(), future_wait_buckets);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::uint64_t{0}),
            a.future_waits);
}

TEST(Prof, DistCommBytesCounted) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::serial);
  set_mode(mode_collect);

  jaccx::dist::communicator comm(2, "a100");
  std::vector<double> a_out(128, 1.0), b_out(128, 2.0), a_in(128), b_in(128);
  comm.exchange(0, a_out.data(), a_in.data(), 1, b_out.data(), b_in.data(),
                128);
  std::vector<double> per_rank = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(comm.allreduce_sum(per_rank), 7.0);

  const async_stats a = aggregate_async();
  bool exchange_found = false;
  bool allreduce_found = false;
  for (const auto& c : a.comms) {
    if (c.name == "dist.exchange") {
      exchange_found = true;
      EXPECT_EQ(c.count, 1u);
      EXPECT_EQ(c.bytes, 128u * 8u); // one full-duplex charged step
    }
    if (c.name == "dist.allreduce") {
      allreduce_found = true;
      // 2 ranks -> 1 recursive-doubling round -> 1 * 8 B * 2 ranks of wire.
      EXPECT_EQ(c.bytes, 16u);
    }
  }
  EXPECT_TRUE(exchange_found);
  EXPECT_TRUE(allreduce_found);

  const std::string text = summary_text();
  EXPECT_NE(text.find("dist.exchange"), std::string::npos);
}

#ifndef _WIN32
TEST(Prof, ToolLibraryReceivesCallbacks) {
  prof_sandbox sandbox;
  jacc::scoped_backend sb(jacc::backend::serial);

  // Read the fixture's counters through its back-channel before and after:
  // dlopen here resolves to the same library instance the loader opens, so
  // both see the same atomics (delta-robust if the tool was ever loaded
  // earlier in this process).
  void* probe = dlopen(JACC_TEST_TOOL_PATH, RTLD_NOW | RTLD_LOCAL);
  ASSERT_NE(probe, nullptr) << dlerror();
  using counts_fn = void (*)(std::uint64_t*, std::uint64_t*);
  auto counts = reinterpret_cast<counts_fn>(
      dlsym(probe, "jaccp_test_tool_counts"));
  ASSERT_NE(counts, nullptr);
  std::uint64_t begins0 = 0, ends0 = 0;
  counts(&begins0, &ends0);

  std::string error;
  const std::uint64_t tool = load_tool_library(JACC_TEST_TOOL_PATH, &error);
  ASSERT_NE(tool, 0u) << error;
  EXPECT_GE(loaded_tool_count(), 1u);
  EXPECT_TRUE(enabled()); // a loaded tool arms the gate like any callback

  jacc::parallel_for(jacc::hints{.name = "tool.for"}, 64,
                     [](jacc::index_t) {});
  const double s = jacc::parallel_reduce(
      jacc::hints{.name = "tool.reduce"}, 64,
      [](jacc::index_t) { return 1.0; });
  EXPECT_DOUBLE_EQ(s, 64.0);

  std::uint64_t begins1 = 0, ends1 = 0;
  counts(&begins1, &ends1);
  EXPECT_GE(begins1, begins0 + 2); // one parallel_for + one parallel_reduce
  EXPECT_GE(ends1, ends0 + 2);
  EXPECT_EQ(begins1 - begins0, ends1 - ends0); // every begin got its end

  EXPECT_TRUE(unload_tool_library(tool));
  EXPECT_FALSE(enabled()); // unhooked: gate drops back to dark

  std::uint64_t begins2 = 0, ends2 = 0;
  counts(&begins2, &ends2);
  jacc::parallel_for(jacc::hints{.name = "tool.after"}, 64,
                     [](jacc::index_t) {});
  std::uint64_t begins3 = 0, ends3 = 0;
  counts(&begins3, &ends3);
  EXPECT_EQ(begins3, begins2); // no callbacks after unload
  EXPECT_EQ(ends3, ends2);

  dlclose(probe);
}
#endif

TEST(Prof, RegionsNestInCgIteration) {
  prof_sandbox sandbox;
  set_mode(mode_collect);
  jacc::scoped_backend sb(jacc::backend::serial);

  jaccx::cg::paper_state st(128);
  jaccx::cg::paper_iteration(st);

  bool region_found = false;
  double region_us = 0.0;
  double kernels_us = 0.0;
  for (const auto& k : aggregate_kernels()) {
    if (k.kind == construct::region && k.name == "cg.iteration") {
      region_found = true;
      EXPECT_EQ(k.count, 1u);
      region_us = k.total_us;
    } else if (k.name == "cg.dot" || k.name == "cg.axpy" ||
               k.name == "cg.copy" || k.name == "jacc.tridiag_matvec") {
      kernels_us += k.total_us;
    }
  }
  EXPECT_TRUE(region_found);
  // The enclosing region covers at least its nested kernels' time.
  EXPECT_GE(region_us, kernels_us * 0.5);
  EXPECT_GT(kernels_us, 0.0);
}

} // namespace
} // namespace jaccx::prof
