// Tests for the HARVEY D2Q9 pull LBM: physics invariants, cross-backend
// agreement, and agreement between the JACC and native implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lbm/native.hpp"
#include "lbm/simulation.hpp"

namespace jaccx::lbm {
namespace {

using jacc::backend;

TEST(Lattice, WeightsSumToOne) {
  double s = 0.0;
  for (double w : weights) {
    s += w;
  }
  EXPECT_NEAR(s, 1.0, 1e-15);
}

TEST(Lattice, VelocitySetIsSymmetric) {
  // Every non-rest direction has its opposite in the set.
  for (int k = 1; k < q; ++k) {
    bool found = false;
    for (int m = 1; m < q; ++m) {
      if (vel_x[static_cast<std::size_t>(m)] ==
              -vel_x[static_cast<std::size_t>(k)] &&
          vel_y[static_cast<std::size_t>(m)] ==
              -vel_y[static_cast<std::size_t>(k)]) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "direction " << k;
  }
}

TEST(Lattice, EquilibriumMomentsAreExact) {
  // Zeroth and first moments of f_eq reproduce density and momentum.
  const double rho = 1.3;
  const double u = 0.05;
  const double v = -0.02;
  double m0 = 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (int k = 0; k < q; ++k) {
    const double fe = equilibrium(k, rho, u, v);
    m0 += fe;
    mx += fe * vel_x[static_cast<std::size_t>(k)];
    my += fe * vel_y[static_cast<std::size_t>(k)];
  }
  EXPECT_NEAR(m0, rho, 1e-12);
  EXPECT_NEAR(mx, rho * u, 1e-12);
  EXPECT_NEAR(my, rho * v, 1e-12);
}

class LbmAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { jacc::set_backend(GetParam()); }
  void TearDown() override { jacc::set_backend(backend::threads); }
};

TEST_P(LbmAllBackends, UniformStateIsFixedPoint) {
  simulation sim(params{.size = 16, .tau = 0.8});
  sim.init_uniform(1.0);
  sim.run(5);
  const auto m = sim.macroscopics();
  for (double d : m.density) {
    EXPECT_NEAR(d, 1.0, 1e-12);
  }
  for (double u : m.velocity_x) {
    EXPECT_NEAR(u, 0.0, 1e-12);
  }
}

TEST_P(LbmAllBackends, MassConservedWhilePulseIsInterior) {
  simulation sim(params{.size = 32, .tau = 0.9});
  sim.init_pulse(1.0, 0.05, 0.08);
  const double m0 = sim.total_mass();
  sim.run(4);
  const double m1 = sim.total_mass();
  // Collision conserves mass exactly; the only leak is the Gaussian tail
  // crossing the frozen boundary ring, which stays below ~1e-8 relative
  // while the acoustic wave (speed c_s ~ 0.58 cells/step) is far from it.
  EXPECT_NEAR(m1, m0, 2e-8 * m0);
}

TEST_P(LbmAllBackends, DensityStaysPositive) {
  simulation sim(params{.size = 24, .tau = 0.7});
  sim.init_pulse(1.0, 0.1, 0.1);
  sim.run(10);
  const auto m = sim.macroscopics();
  for (double d : m.density) {
    EXPECT_GT(d, 0.0);
  }
}

TEST_P(LbmAllBackends, PulsePreservesQuadrantSymmetry) {
  // A centred symmetric pulse in a square box must stay symmetric under
  // x <-> size-1-x (the D2Q9 set is mirror-symmetric).
  const index_t size = 21;
  simulation sim(params{.size = size, .tau = 0.8});
  sim.init_pulse(1.0, 0.08, 0.12);
  sim.run(6);
  const auto m = sim.macroscopics();
  for (index_t x = 0; x < size; ++x) {
    for (index_t y = 0; y < size; ++y) {
      const double a =
          m.density[static_cast<std::size_t>(x * size + y)];
      const double b =
          m.density[static_cast<std::size_t>((size - 1 - x) * size + y)];
      ASSERT_NEAR(a, b, 1e-11) << x << "," << y;
    }
  }
}

TEST_P(LbmAllBackends, MatchesSerialReferenceBitwise) {
  // parallel_for has no reduction reordering, so all back ends must produce
  // exactly the serial evolution.
  const index_t size = 20;
  const int steps = 5;
  simulation sim(params{.size = size, .tau = 0.8});
  sim.init_pulse(1.0, 0.05, 0.15);

  // Serial reference on plain buffers, same initial state.
  std::vector<double> f(static_cast<std::size_t>(q * size * size), 0.0);
  std::vector<double> f1(sim.distributions().host_data(),
                         sim.distributions().host_data() +
                             q * size * size);
  std::vector<double> f2(f1.size(), 0.0);
  for (int s = 0; s < steps; ++s) {
    reference_step(f.data(), f1.data(), f2.data(), 0.8, size);
    std::swap(f1, f2);
  }

  sim.run(steps);
  const double* got = sim.distributions().host_data();
  for (index_t i = 0; i < static_cast<index_t>(f1.size()); ++i) {
    ASSERT_EQ(got[i], f1[static_cast<std::size_t>(i)]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LbmAllBackends,
                         ::testing::ValuesIn(jacc::all_backends),
                         [](const auto& info) {
                           return std::string(jacc::to_string(info.param));
                         });

template <class Api>
struct NativeLbmTest : public ::testing::Test {};

using VendorApis =
    ::testing::Types<vendor::cuda_api, vendor::hip_api, vendor::oneapi_api>;
TYPED_TEST_SUITE(NativeLbmTest, VendorApis);

TYPED_TEST(NativeLbmTest, NativeStepMatchesReference) {
  using Api = TypeParam;
  const index_t size = 18;
  const double tau = 0.8;
  const index_t total = q * size * size;

  // Reference initial state: a small deterministic perturbation.
  std::vector<double> init(static_cast<std::size_t>(total));
  for (index_t i = 0; i < total; ++i) {
    init[static_cast<std::size_t>(i)] =
        weights[static_cast<std::size_t>(i / (size * size))] *
        (1.0 + 0.01 * std::sin(0.37 * static_cast<double>(i)));
  }

  std::vector<double> rf(static_cast<std::size_t>(total), 0.0);
  std::vector<double> rf2(static_cast<std::size_t>(total), 0.0);
  reference_step(rf.data(), init.data(), rf2.data(), tau, size);

  auto& dev = Api::device();
  sim::device_buffer<double> df(dev, total), df1(dev, total),
      df2(dev, total), dw(dev, q), dcx(dev, q), dcy(dev, q);
  df1.copy_from_host(init.data());
  dw.copy_from_host(weights.data());
  dcx.copy_from_host(vel_x.data());
  dcy.copy_from_host(vel_y.data());

  native_state st{df.span(), df1.span(), df2.span(), dw.span(),
                  dcx.span(), dcy.span(), size, tau};
  native_gpu_step<Api>(st);

  std::vector<double> got(static_cast<std::size_t>(total));
  df2.copy_to_host(got.data());
  for (index_t i = 0; i < total; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)],
              rf2[static_cast<std::size_t>(i)])
        << "i=" << i;
  }
}

TEST(NativeLbm, RomeStepMatchesReference) {
  const index_t size = 18;
  const double tau = 0.85;
  const index_t total = q * size * size;
  std::vector<double> init(static_cast<std::size_t>(total));
  for (index_t i = 0; i < total; ++i) {
    init[static_cast<std::size_t>(i)] =
        weights[static_cast<std::size_t>(i / (size * size))] *
        (1.0 + 0.02 * std::cos(0.11 * static_cast<double>(i)));
  }
  std::vector<double> rf(static_cast<std::size_t>(total), 0.0);
  std::vector<double> rf2(static_cast<std::size_t>(total), 0.0);
  reference_step(rf.data(), init.data(), rf2.data(), tau, size);

  auto& dev = sim::get_device("rome64");
  sim::device_buffer<double> df(dev, total), df1(dev, total),
      df2(dev, total), dw(dev, q), dcx(dev, q), dcy(dev, q);
  df1.copy_from_host(init.data());
  dw.copy_from_host(weights.data());
  dcx.copy_from_host(vel_x.data());
  dcy.copy_from_host(vel_y.data());
  native_state st{df.span(), df1.span(), df2.span(), dw.span(), dcx.span(),
                  dcy.span(), size, tau};
  rome_step(dev, st);

  std::vector<double> got(static_cast<std::size_t>(total));
  df2.copy_to_host(got.data());
  for (index_t i = 0; i < total; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)],
              rf2[static_cast<std::size_t>(i)]);
  }
}

} // namespace
} // namespace jaccx::lbm
