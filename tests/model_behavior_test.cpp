// Qualitative assertions on the calibrated performance model: the paper's
// headline observations must hold in simulation.  These are the guardrails
// that keep the figure benches honest when models are re-tuned.
#include <gtest/gtest.h>

#include <vector>

#include "blas/jacc_blas.hpp"
#include "blas/native_cpu.hpp"
#include "blas/native_gpu.hpp"
#include "core/jacc.hpp"

namespace {

using jacc::backend;
using jacc::index_t;

double run_jacc_axpy(backend b, index_t n) {
  jacc::scoped_backend sb(b);
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  jacc::array<double> x(host), y(host);
  auto* dev = jacc::backend_device(b);
  dev->reset_clock();
  dev->cache().reset();
  jaccx::blas::jacc_axpy(n, 2.0, x, y);
  return dev->tl().now_us();
}

double run_jacc_dot(backend b, index_t n) {
  jacc::scoped_backend sb(b);
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  jacc::array<double> x(host), y(host);
  auto* dev = jacc::backend_device(b);
  dev->reset_clock();
  dev->cache().reset();
  jaccx::blas::jacc_dot(n, x, y);
  return dev->tl().now_us();
}

TEST(ModelBehavior, GpuWinsBigOnLargeAxpy) {
  // Paper Sec. V-A1: the same JACC AXPY code is ~70x faster on the AMD GPU
  // than on the AMD CPU for large arrays.  Require at least ~20x in the
  // model, and well over 1x for every GPU.
  const index_t n = 1 << 20;
  const double cpu = run_jacc_axpy(backend::cpu_rome, n);
  const double mi100 = run_jacc_axpy(backend::hip_mi100, n);
  const double a100 = run_jacc_axpy(backend::cuda_a100, n);
  const double intel = run_jacc_axpy(backend::oneapi_max1550, n);
  EXPECT_GT(cpu / mi100, 20.0);
  EXPECT_GT(cpu / a100, 20.0);
  EXPECT_GT(cpu / intel, 5.0);
}

TEST(ModelBehavior, CpuWinsOnSmallDot) {
  // Paper Sec. V-A1: for DOT on small arrays the CPU beats the GPU (~2x on
  // the AMD pair) because of the two-kernel scheme and transfer latency.
  const index_t n = 1 << 12;
  const double cpu = run_jacc_dot(backend::cpu_rome, n);
  const double mi100 = run_jacc_dot(backend::hip_mi100, n);
  EXPECT_LT(cpu, mi100);
}

TEST(ModelBehavior, CrossoverExistsForDot) {
  // DOT must flip from CPU-favourable to GPU-favourable as size grows.
  const double cpu_small = run_jacc_dot(backend::cpu_rome, 1 << 12);
  const double gpu_small = run_jacc_dot(backend::hip_mi100, 1 << 12);
  const double cpu_large = run_jacc_dot(backend::cpu_rome, 1 << 22);
  const double gpu_large = run_jacc_dot(backend::hip_mi100, 1 << 22);
  EXPECT_LT(cpu_small, gpu_small);
  EXPECT_GT(cpu_large, gpu_large);
}

TEST(ModelBehavior, JaccOverheadVanishesAtLargeSizes) {
  // Paper abstract: "negligible overhead versus vendor-specific solutions".
  // Compare JACC AXPY vs the native AXPY on the A100 model at a large size.
  const index_t n = 1 << 22;
  const double jacc_t = run_jacc_axpy(backend::cuda_a100, n);

  auto& dev = jaccx::vendor::cuda_api::device();
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  jaccx::sim::device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  dev.reset_clock();
  dev.cache().reset();
  jaccx::blas::native_gpu_axpy<jaccx::vendor::cuda_api>(n, 2.0, dx.span(),
                                                        dy.span());
  const double native_t = dev.tl().now_us();

  EXPECT_LT(jacc_t, native_t * 1.05) << "overhead must be under 5% at 4M";
  EXPECT_GT(jacc_t, native_t * 0.95) << "and JACC cannot be faster than "
                                        "native by more than noise";
}

TEST(ModelBehavior, JaccOverheadVisibleAtSmallSizes) {
  // ... but at small sizes the dispatch cost shows (paper Sec. V-A1's AMD
  // small/medium observation).
  const index_t n = 1 << 8;
  const double jacc_t = run_jacc_axpy(backend::hip_mi100, n);

  auto& dev = jaccx::vendor::hip_api::device();
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  jaccx::sim::device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  dev.reset_clock();
  dev.cache().reset();
  jaccx::blas::native_gpu_axpy<jaccx::vendor::hip_api>(n, 2.0, dx.span(),
                                                       dy.span());
  const double native_t = dev.tl().now_us();

  EXPECT_GT(jacc_t, native_t * 1.05);
}

TEST(ModelBehavior, IntelJaccDotOverheadAtLargeSizes) {
  // Paper Sec. V-A1: ~35% JACC overhead for DOT on the Intel Max 1550 at
  // larger sizes; assert it lands between 15% and 60%.
  const index_t n = 1 << 22;
  const double jacc_t = run_jacc_dot(backend::oneapi_max1550, n);

  auto& dev = jaccx::vendor::oneapi_api::device();
  std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  jaccx::sim::device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  dev.reset_clock();
  dev.cache().reset();
  jaccx::blas::native_gpu_dot<jaccx::vendor::oneapi_api>(n, dx.span(),
                                                         dy.span());
  const double native_t = dev.tl().now_us();

  const double overhead = jacc_t / native_t - 1.0;
  EXPECT_GT(overhead, 0.15);
  EXPECT_LT(overhead, 0.60);
}

TEST(ModelBehavior, TransfersDominateSmallGpuReductions) {
  // The scalar D2H latency must be a visible share of a small GPU DOT.
  jacc::scoped_backend sb(backend::hip_mi100);
  auto* dev = jacc::backend_device(backend::hip_mi100);
  jacc::array<double> x(std::vector<double>(256, 1.0));
  dev->reset_clock();
  jaccx::blas::jacc_dot(256, x, x);
  double xfer = 0.0;
  for (const auto& e : dev->tl().events()) {
    if (e.kind == jaccx::sim::event_kind::transfer_d2h) {
      xfer += e.duration_us;
    }
  }
  EXPECT_GT(xfer / dev->tl().now_us(), 0.2);
}

TEST(ModelBehavior, LaunchOverheadFlattensSmallSizesOnGpu) {
  // Times at 2^8 and 2^12 must be nearly identical on a GPU (latency
  // floor), unlike 2^20 vs 2^24.
  const double t8 = run_jacc_axpy(backend::cuda_a100, 1 << 8);
  const double t12 = run_jacc_axpy(backend::cuda_a100, 1 << 12);
  const double t20 = run_jacc_axpy(backend::cuda_a100, 1 << 20);
  const double t24 = run_jacc_axpy(backend::cuda_a100, 1 << 24);
  EXPECT_LT(t12 / t8, 1.5);
  EXPECT_GT(t24 / t20, 8.0);
}

} // namespace
