// Direct tests of the vendor-flavoured native layers (cudasim / hipsim /
// onesim): the CuArray/ROCArray/oneArray analogues, zeros-as-a-kernel, the
// 1D/2D launch helpers, and the Fig. 7 convention note (oneAPI maps
// dimension 0 to the second loop index in the paper's listings).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "backends/vendor_api.hpp"

namespace jaccx {
namespace {

using jaccx::index_t;

template <class Api>
struct VendorApiTest : public ::testing::Test {};

using Apis =
    ::testing::Types<vendor::cuda_api, vendor::hip_api, vendor::oneapi_api>;
TYPED_TEST_SUITE(VendorApiTest, Apis);

TYPED_TEST(VendorApiTest, DeviceIdentity) {
  using Api = TypeParam;
  auto& dev = Api::device();
  EXPECT_EQ(&dev, &Api::device());
  EXPECT_EQ(dev.model().kind, sim::device_kind::gpu);
  EXPECT_EQ(Api::max_threads(), dev.model().max_threads_per_block);
}

TYPED_TEST(VendorApiTest, ToDeviceUploadsAndCharges) {
  using Api = TypeParam;
  auto& dev = Api::device();
  std::vector<double> host(257);
  std::iota(host.begin(), host.end(), 0.0);
  dev.reset_clock();
  auto buf = Api::template to_device<double>(host.data(), 257);
  EXPECT_EQ(buf.size(), 257);
  EXPECT_DOUBLE_EQ(buf.data()[256], 256.0);
  // alloc + h2d must both have been charged.
  int h2d = 0;
  for (const auto& e : dev.tl().events()) {
    h2d += e.kind == sim::event_kind::transfer_h2d;
  }
  EXPECT_EQ(h2d, 1);
  EXPECT_GE(dev.tl().now_us(), dev.model().xfer_latency_us);
}

TYPED_TEST(VendorApiTest, ZerosIsARealFillKernel) {
  using Api = TypeParam;
  auto& dev = Api::device();
  dev.reset_clock();
  auto buf = Api::template zeros<double>(1000);
  for (index_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(buf.data()[i], 0.0);
  }
  int kernels = 0;
  for (const auto& e : dev.tl().events()) {
    kernels += e.kind == sim::event_kind::kernel;
  }
  EXPECT_EQ(kernels, 1) << "zeros costs a launch, as CUDA.zeros does";
}

TYPED_TEST(VendorApiTest, Launch1dCoversRange) {
  using Api = TypeParam;
  auto buf = Api::template zeros<double>(1000);
  auto s = buf.span();
  const index_t n = 1000;
  Api::launch1d(sim::ceil_div(n, 256), 256,
                [s, n](sim::kernel_ctx& ctx) {
                  const index_t i = ctx.global_x();
                  if (i < n) {
                    s[i] = static_cast<double>(i);
                  }
                },
                "fill_iota");
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(buf.data()[i], static_cast<double>(i));
  }
}

TYPED_TEST(VendorApiTest, Launch2dUsesBothDimensions) {
  using Api = TypeParam;
  const index_t rows = 20;
  const index_t cols = 12;
  auto buf = Api::template zeros<double>(rows * cols);
  auto s = buf.span2d(rows, cols);
  Api::launch2d(sim::dim3{sim::ceil_div(rows, 16), sim::ceil_div(cols, 16)},
                sim::dim3{16, 16},
                [s, rows, cols](sim::kernel_ctx& ctx) {
                  const index_t i = ctx.global_x();
                  const index_t j = ctx.global_y();
                  if (i < rows && j < cols) {
                    s(i, j) = static_cast<double>(i * 100 + j);
                  }
                },
                "fill2d");
  EXPECT_DOUBLE_EQ(s.raw(19, 11), 1911.0);
  EXPECT_DOUBLE_EQ(s.raw(0, 11), 11.0);
}

TYPED_TEST(VendorApiTest, LaunchSharedSupportsBarriers) {
  using Api = TypeParam;
  auto buf = Api::template zeros<double>(64);
  auto s = buf.span();
  Api::launch_shared(
      1, 64, 64 * sizeof(double),
      [s](sim::kernel_ctx& ctx) {
        double* sh = ctx.shared_mem<double>();
        const auto ti = ctx.thread_idx.x;
        sh[ti] = static_cast<double>(ti);
        ctx.sync_threads();
        s[ti] = sh[63 - ti]; // read another lane's write: needs the barrier
      },
      "reverse", false);
  for (index_t i = 0; i < 64; ++i) {
    ASSERT_DOUBLE_EQ(buf.data()[i], static_cast<double>(63 - i));
  }
}

TEST(VendorApis, ThreeDistinctDevices) {
  EXPECT_NE(&vendor::cuda_api::device(), &vendor::hip_api::device());
  EXPECT_NE(&vendor::hip_api::device(), &vendor::oneapi_api::device());
  EXPECT_EQ(vendor::cuda_api::device().model().name, "a100");
  EXPECT_EQ(vendor::hip_api::device().model().name, "mi100");
  EXPECT_EQ(vendor::oneapi_api::device().model().name, "max1550");
}

TEST(VendorApis, NamesMatchTheJuliaPackages) {
  EXPECT_EQ(vendor::cuda_api::name(), "cuda");
  EXPECT_EQ(vendor::hip_api::name(), "amdgpu");
  EXPECT_EQ(vendor::oneapi_api::name(), "oneapi");
}

} // namespace
} // namespace jaccx
