// Unit tests for the SIMT executors: geometry, the fast path, cooperative
// barriers with shared memory, and the CPU coarse-grained regions.
#include <gtest/gtest.h>

#include <vector>

#include "sim/launch.hpp"

namespace jaccx::sim {
namespace {

device_model gpu_model() {
  device_model m;
  m.name = "simt_test_gpu";
  m.kind = device_kind::gpu;
  m.parallel_units = 8;
  m.max_threads_per_block = 512;
  m.shared_mem_per_block = 16 * 1024;
  m.dram_bw_gbps = 1000.0;
  m.cache_bw_gbps = 4000.0;
  m.cache_bytes = 1 << 18;
  m.cache_line_bytes = 64;
  m.cache_assoc = 8;
  m.launch_overhead_us = 1.0;
  m.alloc_overhead_us = 0.1;
  m.xfer_bw_gbps = 10.0;
  m.xfer_latency_us = 1.0;
  return m;
}

device_model cpu_model() {
  device_model m;
  m.name = "simt_test_cpu";
  m.kind = device_kind::cpu;
  m.parallel_units = 8;
  m.dram_bw_gbps = 100.0;
  m.cache_bw_gbps = 1000.0;
  m.cache_bytes = 1 << 18;
  m.cache_line_bytes = 64;
  m.cache_assoc = 8;
  m.launch_overhead_us = 10.0;
  m.per_index_overhead_ns = 100.0;
  return m;
}

TEST(SimtLaunch, EveryThreadRunsOnce1D) {
  device dev(gpu_model());
  std::vector<int> hits(1000, 0);
  launch_config cfg;
  cfg.block = dim3{128};
  cfg.grid = dim3{ceil_div(1000, 128)};
  launch(dev, cfg, [&](kernel_ctx& ctx) {
    const auto i = ctx.global_x();
    if (i < 1000) {
      hits[static_cast<std::size_t>(i)]++;
    }
  });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
  EXPECT_EQ(dev.last_tally().indices,
            static_cast<std::uint64_t>(128 * ceil_div(1000, 128)));
  EXPECT_EQ(dev.last_tally().blocks, 8u);
}

TEST(SimtLaunch, GeometryFields2D) {
  device dev(gpu_model());
  launch_config cfg;
  cfg.block = dim3{4, 8};
  cfg.grid = dim3{3, 2};
  std::vector<int> seen(4 * 8 * 3 * 2, 0);
  launch(dev, cfg, [&](kernel_ctx& ctx) {
    EXPECT_EQ(ctx.block_dim.x, 4);
    EXPECT_EQ(ctx.block_dim.y, 8);
    EXPECT_EQ(ctx.grid_dim.x, 3);
    EXPECT_EQ(ctx.grid_dim.y, 2);
    const auto gx = ctx.global_x();
    const auto gy = ctx.global_y();
    seen[static_cast<std::size_t>(gx + gy * 12)]++;
  });
  for (int s : seen) {
    EXPECT_EQ(s, 1);
  }
}

TEST(SimtLaunch, SyncThreadsThrowsInFastPath) {
  device dev(gpu_model());
  launch_config cfg;
  cfg.block = dim3{4};
  cfg.grid = dim3{1};
  EXPECT_THROW(
      launch(dev, cfg, [&](kernel_ctx& ctx) { ctx.sync_threads(); }),
      jaccx::usage_error);
  // The failed launch must not leave the device in the "active" state for
  // ever; finish bookkeeping so later launches work.  (The throw unwinds
  // through launch, which doesn't reach end_launch — recover explicitly.)
  if (dev.launch_active()) {
    dev.end_launch("aborted", launch_flavor{}, 0, 0.0, 0);
  }
  std::vector<int> hits(4, 0);
  launch(dev, cfg, [&](kernel_ctx& ctx) {
    hits[static_cast<std::size_t>(ctx.thread_idx.x)]++;
  });
  EXPECT_EQ(hits[3], 1);
}

TEST(SimtLaunch, CooperativeBarrierOrdersPhases) {
  // Classic two-phase test: every lane writes its slot, barriers, then reads
  // a neighbour's slot.  Without real barrier semantics lane 0 would read
  // an unwritten slot.
  device dev(gpu_model());
  const std::int64_t n = 64;
  std::vector<double> out(static_cast<std::size_t>(n), -1.0);
  launch_config cfg;
  cfg.block = dim3{n};
  cfg.grid = dim3{1};
  cfg.shmem_bytes = static_cast<std::size_t>(n) * sizeof(double);
  launch_cooperative(dev, cfg, [&](kernel_ctx& ctx) {
    double* sh = ctx.shared_mem<double>();
    const auto ti = ctx.thread_idx.x;
    sh[ti] = static_cast<double>(ti);
    ctx.sync_threads();
    out[static_cast<std::size_t>(ti)] = sh[(ti + 1) % n];
  });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     static_cast<double>((i + 1) % n));
  }
}

TEST(SimtLaunch, CooperativeTreeReduction) {
  device dev(gpu_model());
  const std::int64_t block = 256;
  const std::int64_t blocks = 4;
  std::vector<double> partials(static_cast<std::size_t>(blocks), 0.0);
  launch_config cfg;
  cfg.block = dim3{block};
  cfg.grid = dim3{blocks};
  cfg.shmem_bytes = static_cast<std::size_t>(block) * sizeof(double);
  launch_cooperative(dev, cfg, [&](kernel_ctx& ctx) {
    double* sh = ctx.shared_mem<double>();
    const auto ti = ctx.thread_idx.x;
    sh[ti] = 1.0;
    ctx.sync_threads();
    for (std::int64_t s = block / 2; s > 0; s >>= 1) {
      if (ti < s) {
        sh[ti] += sh[ti + s];
      }
      ctx.sync_threads();
    }
    if (ti == 0) {
      partials[static_cast<std::size_t>(ctx.block_idx.x)] = sh[0];
    }
  });
  for (double p : partials) {
    EXPECT_DOUBLE_EQ(p, static_cast<double>(block));
  }
}

TEST(SimtLaunch, SharedMemoryIsPerBlockScratch) {
  // Block 1 must not observe block 0's shared values if it writes first —
  // since blocks run sequentially, stale data would persist unless each
  // block fully overwrites what it reads.  Verify a read-your-own-write
  // discipline across blocks.
  device dev(gpu_model());
  launch_config cfg;
  cfg.block = dim3{8};
  cfg.grid = dim3{4};
  cfg.shmem_bytes = 8 * sizeof(double);
  std::vector<double> out(32, 0.0);
  launch_cooperative(dev, cfg, [&](kernel_ctx& ctx) {
    double* sh = ctx.shared_mem<double>();
    const auto ti = ctx.thread_idx.x;
    sh[ti] = static_cast<double>(ctx.block_idx.x * 10);
    ctx.sync_threads();
    out[static_cast<std::size_t>(ctx.global_x())] = sh[(ti + 3) % 8];
  });
  for (std::int64_t b = 0; b < 4; ++b) {
    for (std::int64_t t = 0; t < 8; ++t) {
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(b * 8 + t)],
                       static_cast<double>(b * 10));
    }
  }
}

TEST(SimtLaunch, ValidatesGeometry) {
  device dev(gpu_model());
  launch_config cfg;
  cfg.block = dim3{1024}; // > max 512
  cfg.grid = dim3{1};
  EXPECT_THROW(launch(dev, cfg, [](kernel_ctx&) {}), jaccx::usage_error);
  cfg.block = dim3{0};
  EXPECT_THROW(launch(dev, cfg, [](kernel_ctx&) {}), jaccx::usage_error);
  cfg.block = dim3{32};
  cfg.shmem_bytes = 1 << 20; // > 16 KiB limit
  EXPECT_THROW(launch(dev, cfg, [](kernel_ctx&) {}), jaccx::usage_error);
}

TEST(SimtLaunch, GpuLaunchOnCpuModelThrows) {
  device dev(cpu_model());
  launch_config cfg;
  cfg.block = dim3{32};
  cfg.grid = dim3{1};
  EXPECT_THROW(launch(dev, cfg, [](kernel_ctx&) {}), jaccx::usage_error);
}

TEST(CpuRegion, RunsAllIndicesInOrder) {
  device dev(cpu_model());
  std::vector<index_t> order;
  cpu_region_config cfg;
  cpu_parallel_range(dev, cfg, 10, [&](index_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (index_t i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(dev.last_tally().indices, 10u);
}

TEST(CpuRegion, TwoDColumnMajorOrder) {
  device dev(cpu_model());
  std::vector<std::pair<index_t, index_t>> order;
  cpu_region_config cfg;
  cpu_parallel_range_2d(dev, cfg, 2, 3, [&](index_t i, index_t j) {
    order.emplace_back(i, j);
  });
  ASSERT_EQ(order.size(), 6u);
  // j outer, i inner: (0,0),(1,0),(0,1),(1,1),(0,2),(1,2)
  EXPECT_EQ(order[0], (std::pair<index_t, index_t>{0, 0}));
  EXPECT_EQ(order[1], (std::pair<index_t, index_t>{1, 0}));
  EXPECT_EQ(order[2], (std::pair<index_t, index_t>{0, 1}));
  EXPECT_EQ(order[5], (std::pair<index_t, index_t>{1, 2}));
}

TEST(CpuRegion, ThreeDChargesAllIndices) {
  device dev(cpu_model());
  int count = 0;
  cpu_region_config cfg;
  cpu_parallel_range_3d(dev, cfg, 2, 3, 4,
                        [&](index_t, index_t, index_t) { ++count; });
  EXPECT_EQ(count, 24);
  EXPECT_EQ(dev.last_tally().indices, 24u);
}

TEST(CpuRegion, ChunkOverrideReflectedInTally) {
  device dev(cpu_model());
  cpu_region_config cfg;
  cfg.chunks = 100;
  cpu_parallel_range(dev, cfg, 1000, [](index_t) {});
  EXPECT_EQ(dev.last_tally().blocks, 100u);
  cpu_region_config def;
  cpu_parallel_range(dev, def, 1000, [](index_t) {});
  EXPECT_EQ(dev.last_tally().blocks, 8u); // parallel_units
}

TEST(CpuRegion, RejectsCpuRegionOnGpuModel) {
  device dev(gpu_model());
  cpu_region_config cfg;
  EXPECT_THROW(cpu_parallel_range(dev, cfg, 10, [](index_t) {}),
               jaccx::usage_error);
}

TEST(SimtLaunch, PerIndexOverheadRaisesCpuCost) {
  device dev(cpu_model());
  cpu_region_config cfg;
  const double t0 = dev.tl().now_us();
  cpu_parallel_range(dev, cfg, 80'000, [](index_t) {});
  const double dt = dev.tl().now_us() - t0;
  // 80k indices * 100 ns / 8 units = 1000 us of scheduling overhead + 10 us
  // launch.
  EXPECT_NEAR(dt, 1010.0, 5.0);
}

TEST(SimtLaunch, Cooperative3dBlocksBarrierCorrectly) {
  // 4x4x4 blocks over a 2x2x2 grid; each lane writes its flattened tile
  // index to shared memory, barriers, then reads the opposite lane's slot.
  device dev(gpu_model());
  launch_config cfg;
  cfg.block = dim3{4, 4, 4};
  cfg.grid = dim3{2, 2, 2};
  cfg.shmem_bytes = 64 * sizeof(double);
  std::vector<double> out(static_cast<std::size_t>(8 * 64), -1.0);
  launch_cooperative(dev, cfg, [&](kernel_ctx& ctx) {
    double* sh = ctx.shared_mem<double>();
    const auto ti = ctx.thread_idx.x + 4 * (ctx.thread_idx.y +
                                            4 * ctx.thread_idx.z);
    sh[ti] = static_cast<double>(ti);
    ctx.sync_threads();
    const auto block = ctx.block_idx.x + 2 * (ctx.block_idx.y +
                                              2 * ctx.block_idx.z);
    out[static_cast<std::size_t>(block * 64 + ti)] = sh[63 - ti];
  });
  for (std::int64_t b = 0; b < 8; ++b) {
    for (std::int64_t t = 0; t < 64; ++t) {
      ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(b * 64 + t)],
                       static_cast<double>(63 - t));
    }
  }
  EXPECT_EQ(dev.last_tally().indices, 8u * 64u);
  EXPECT_EQ(dev.last_tally().blocks, 8u);
}

TEST(SimtLaunch, KernelExceptionLeavesDeviceUsable) {
  device dev(gpu_model());
  launch_config cfg;
  cfg.block = dim3{8};
  cfg.grid = dim3{1};
  struct boom {};
  EXPECT_THROW(launch(dev, cfg,
                      [](kernel_ctx& ctx) {
                        if (ctx.thread_idx.x == 3) {
                          throw boom{};
                        }
                      }),
               boom);
  EXPECT_FALSE(dev.launch_active()) << "guard must abort the launch";
  // The device accepts new launches afterwards.
  int count = 0;
  launch(dev, cfg, [&](kernel_ctx&) { ++count; });
  EXPECT_EQ(count, 8);
}

} // namespace
} // namespace jaccx::sim
