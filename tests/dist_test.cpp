// Tests for the distributed-memory substrate: communicator semantics,
// cost model behaviour, and the distributed CG solver's correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "cg/solver.hpp"
#include "dist/dist_cg.hpp"
#include "mem/pool.hpp"
#include "sim/stream.hpp"

namespace jaccx::dist {
namespace {

TEST(Communicator, RanksOwnDistinctDevices) {
  communicator comm(4, "a100");
  EXPECT_EQ(comm.ranks(), 4);
  EXPECT_NE(&comm.dev(0), &comm.dev(3));
  EXPECT_EQ(comm.dev(2).model().name, "a100");
  EXPECT_THROW(communicator(0), usage_error);
}

TEST(Communicator, SendRecvMovesDataAndChargesBoth) {
  communicator comm(2, "a100");
  comm.reset();
  std::vector<double> src = {1.0, 2.0, 3.0};
  std::vector<double> dst(3, 0.0);
  comm.send_recv(0, src.data(), 1, dst.data(), 3);
  EXPECT_EQ(dst, src);
  EXPECT_GT(comm.time_of(0), 0.0);
  EXPECT_GT(comm.time_of(1), 0.0);
  EXPECT_DOUBLE_EQ(comm.time_of(0), comm.time_of(1));
  // Latency floor for small messages.
  EXPECT_GE(comm.time_of(0), comm.nic().latency_us);
}

TEST(Communicator, ExchangeIsFullDuplex) {
  communicator comm(2, "a100");
  comm.reset();
  std::vector<double> a_out = {1.0};
  std::vector<double> b_out = {2.0};
  double a_in = 0.0;
  double b_in = 0.0;
  comm.exchange(0, a_out.data(), &a_in, 1, b_out.data(), &b_in, 1);
  EXPECT_DOUBLE_EQ(a_in, 2.0);
  EXPECT_DOUBLE_EQ(b_in, 1.0);
  const double one_way = comm.time_of(0);
  // Both directions in one charged step, not two.
  EXPECT_LT(one_way, 2.0 * comm.nic().latency_us);
}

TEST(Communicator, AllreduceSumsAndScalesWithLog2Ranks) {
  for (int ranks : {1, 2, 4, 8, 16}) {
    communicator comm(ranks, "a100");
    comm.reset();
    std::vector<double> vals(static_cast<std::size_t>(ranks), 1.5);
    const double sum = comm.allreduce_sum(vals);
    EXPECT_DOUBLE_EQ(sum, 1.5 * ranks);
    int expect_rounds = 0;
    while ((1 << expect_rounds) < ranks) {
      ++expect_rounds;
    }
    EXPECT_EQ(comm.allreduce_rounds(), expect_rounds);
    if (ranks > 1) {
      EXPECT_NEAR(comm.now_us(),
                  expect_rounds * (comm.nic().latency_us +
                                   8.0 / (comm.nic().bandwidth_gbps * 1e3)),
                  1e-9);
    }
  }
}

TEST(Communicator, BarrierAlignsClocks) {
  communicator comm(3, "a100");
  comm.reset();
  comm.dev(1).charge_h2d(1 << 20, "skew");
  comm.barrier();
  EXPECT_DOUBLE_EQ(comm.time_of(0), comm.time_of(1));
  EXPECT_DOUBLE_EQ(comm.time_of(1), comm.time_of(2));
}

TEST(Communicator, EthernetIsSlowerThanInfiniband) {
  // Both communicators bind the same device instances (rank r <-> instance
  // r), so measure each as a clock delta around its own transfer.
  std::vector<double> buf(1024, 1.0);
  std::vector<double> dst(1024, 0.0);

  communicator ib(2, "a100", nic_model::infiniband_like());
  ib.reset();
  ib.send_recv(0, buf.data(), 1, dst.data(), 1024);
  const double t_ib = ib.now_us();

  communicator eth(2, "a100", nic_model::ethernet_like());
  eth.reset();
  eth.send_recv(0, buf.data(), 1, dst.data(), 1024);
  const double t_eth = eth.now_us();

  EXPECT_GT(t_eth, 5.0 * t_ib);
}

class DistCg : public ::testing::TestWithParam<int> {};

TEST_P(DistCg, SolvesTheSameSystemAsTheSingleDeviceSolver) {
  const index_t n = 300;
  // Reference via the (serial backend) jacc solver.
  jacc::scoped_backend sb(jacc::backend::serial);
  cg::tridiag_system A(n);
  std::vector<double> b_host(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b_host[static_cast<std::size_t>(i)] =
        std::cos(0.05 * static_cast<double>(i));
  }
  cg::darray b(b_host);
  cg::darray x_ref(n);
  const auto ref = cg::cg_solve(A, b, x_ref, {.max_iterations = 300,
                                              .tolerance = 1e-12});
  ASSERT_TRUE(ref.converged);

  communicator comm(GetParam(), "a100");
  comm.reset();
  tridiag_cg solver(comm, n);
  std::vector<double> x;
  const auto res = solver.solve(b_host, x, {.max_iterations = 300,
                                            .tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.relative_residual, 1e-11);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[static_cast<std::size_t>(i)], x_ref.host_data()[i], 1e-8)
        << "ranks=" << GetParam() << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistCg, ::testing::Values(1, 2, 3, 7),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(DistCg, ZeroRhsConvergesImmediately) {
  communicator comm(2, "a100");
  comm.reset();
  tridiag_cg solver(comm, 64);
  std::vector<double> x;
  const auto res = solver.solve(std::vector<double>(64, 0.0), x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(DistCg, MoreRanksReduceIterationTimeUntilLatencyWins) {
  // Strong scaling of one CG iteration at 1M rows: 4 ranks beat 1 rank;
  // at 64 ranks the 6 allreduce/halo latencies per iteration bite.
  const index_t n = 1 << 20;
  auto iter_us = [&](int ranks) {
    communicator comm(ranks, "a100");
    comm.reset();
    tridiag_cg solver(comm, n);
    solver.bench_reset();
    solver.bench_iteration(); // warm-up
    const double t0 = comm.barrier();
    solver.bench_iteration();
    return comm.barrier() - t0;
  };
  const double t1 = iter_us(1);
  const double t4 = iter_us(4);
  EXPECT_LT(t4, t1);
  const double t64 = iter_us(64);
  // Latency floor: 3 allreduces * 6 rounds * 1.5us + kernel launches can't
  // go below tens of microseconds regardless of rank count.
  EXPECT_GT(t64, 25.0);
}

// --- async (queue-routed) communicator ---------------------------------------

TEST(DistAsync, RankStreamsAreLabeledTraceLanes) {
  communicator comm(2, "a100");
  comm.reset();
  EXPECT_EQ(comm.rank_stream(0).tl().label(), "a100.rank0");
  EXPECT_EQ(comm.rank_stream(1).tl().label(), "a100.rank1");
  EXPECT_FALSE(comm.rank_queue(0).is_default());
}

TEST(DistAsync, IexchangeMovesDataAndChargesStreamsNotDevices) {
  communicator comm(2, "a100");
  comm.reset();
  double a_out = 1.0;
  double b_out = 2.0;
  double a_in = 0.0;
  double b_in = 0.0;
  const jacc::event e = comm.iexchange(0, &a_out, &a_in, 1, &b_out, &b_in, 1);
  EXPECT_DOUBLE_EQ(a_in, 2.0);
  EXPECT_DOUBLE_EQ(b_in, 1.0);
  EXPECT_TRUE(e.complete());
  EXPECT_GE(e.sim_time_us(), comm.nic().latency_us);
  // The compute clocks are untouched — the comm lanes carry the charge —
  // until a wait pulls a device up to its lane.
  EXPECT_DOUBLE_EQ(comm.time_of(0), 0.0);
  EXPECT_DOUBLE_EQ(comm.time_of(1), 0.0);
  EXPECT_GE(comm.comm_time_of(0), comm.nic().latency_us);
  EXPECT_GE(comm.comm_time_of(1), comm.nic().latency_us);
  comm.wait_comm(0);
  EXPECT_DOUBLE_EQ(comm.time_of(0), comm.comm_time_of(0));
  EXPECT_DOUBLE_EQ(comm.time_of(1), 0.0);
  comm.sync_comm();
  EXPECT_DOUBLE_EQ(comm.time_of(1), comm.comm_time_of(1));
}

TEST(DistAsync, IsendRecvMovesDataThroughPooledStaging) {
  communicator comm(3, "a100");
  comm.reset();
  std::vector<double> src = {4.0, 5.0, 6.0};
  std::vector<double> dst(3, 0.0);
  const jacc::event e = comm.isend_recv(0, src.data(), 2, dst.data(), 3);
  EXPECT_EQ(dst, src);
  EXPECT_TRUE(e.complete());
  // Same-rank degenerates to a free memmove (and a null event).
  std::vector<double> self(3, 0.0);
  const jacc::event e0 = comm.isend_recv(1, src.data(), 1, self.data(), 3);
  EXPECT_EQ(self, src);
  EXPECT_FALSE(e0.valid());
}

TEST(DistAsync, IallreduceValueMatchesSyncBitExact) {
  communicator comm(4, "a100");
  comm.reset();
  const std::vector<double> vals = {0.1, 0.2, 1.0 / 3.0, -7.5};
  const double expect = comm.allreduce_sum(vals, "dist_test.sync");
  jacc::future<double> f =
      comm.iallreduce_sum(vals.data(), 4, "dist_test.async");
  EXPECT_TRUE(f.valid());
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(), expect); // identical summation order: exact
  EXPECT_GT(f.sim_time_us(), 0.0);
}

TEST(DistAsync, SyncChargesUnperturbedByAsyncQueueSetup) {
  // The seed pin: touching the async layer (queues, streams, link
  // reservations) then resetting must leave the synchronous cost model
  // byte-identical.
  communicator comm(4, "a100");
  const auto run_sync = [&comm] {
    comm.reset();
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    double src = 9.0;
    double dst = 0.0;
    comm.send_recv(0, &src, 2, &dst, 1);
    comm.allreduce_sum(v);
    std::vector<double> times;
    for (int r = 0; r < 4; ++r) {
      times.push_back(comm.time_of(r));
    }
    return times;
  };
  const auto baseline = run_sync();
  comm.reset();
  for (int r = 0; r < 4; ++r) {
    comm.rank_stream(r);
  }
  double a = 1.0;
  double b = 2.0;
  double a_in = 0.0;
  double b_in = 0.0;
  comm.iexchange(0, &a, &a_in, 1, &b, &b_in, 1);
  const double vals[4] = {1.0, 1.0, 1.0, 1.0};
  comm.iallreduce_sum(vals, 4, "dist_test.perturb").get();
  EXPECT_EQ(run_sync(), baseline);
}

TEST(DistAsync, AsyncIterationBitExactWithSyncIteration) {
  // The uniform bench state annihilates r exactly after one iteration
  // (s = A p is uniformly 3, alpha = 1/6), so iteration 2 runs on 0/0 =
  // NaN in BOTH variants.  Compare iteration 1 by value (finite) and
  // iteration 2 bit-for-bit (memcmp survives NaN and is the actual claim).
  const index_t n = 4096;
  const int ranks = 4;
  const auto bits = [](const std::vector<double>& v) {
    std::vector<std::uint64_t> out(v.size());
    std::memcpy(out.data(), v.data(), v.size() * sizeof(double));
    return out;
  };
  communicator comm(ranks, "a100");
  comm.reset();
  tridiag_cg sync_solver(comm, n);
  sync_solver.bench_reset();
  sync_solver.bench_iteration();
  const auto r_ref1 = sync_solver.gather_vector('r');
  const auto p_ref1 = sync_solver.gather_vector('p');
  const auto s_ref1 = sync_solver.gather_vector('s');
  const auto x_ref1 = sync_solver.gather_vector('x');
  sync_solver.bench_iteration();
  const auto r_ref2 = sync_solver.gather_vector('r');
  const auto x_ref2 = sync_solver.gather_vector('x');

  comm.reset();
  tridiag_cg async_solver(comm, n);
  async_solver.bench_reset();
  async_solver.bench_iteration_async();
  EXPECT_EQ(async_solver.gather_vector('r'), r_ref1);
  EXPECT_EQ(async_solver.gather_vector('p'), p_ref1);
  EXPECT_EQ(async_solver.gather_vector('s'), s_ref1);
  EXPECT_EQ(async_solver.gather_vector('x'), x_ref1);
  async_solver.bench_iteration_async();
  EXPECT_EQ(bits(async_solver.gather_vector('r')), bits(r_ref2));
  EXPECT_EQ(bits(async_solver.gather_vector('x')), bits(x_ref2));
}

TEST(DistAsync, PipelinedIterationIsFasterInSimulatedTime) {
  const index_t n = index_t{1} << 18;
  const int ranks = 8;
  const auto iter_us = [n](bool pipelined) {
    communicator comm(ranks, "a100");
    comm.reset();
    tridiag_cg solver(comm, n);
    solver.bench_reset();
    if (pipelined) {
      solver.bench_iteration_async();
      comm.sync_comm();
      const double t0 = comm.barrier();
      solver.bench_iteration_async();
      comm.sync_comm();
      return comm.barrier() - t0;
    }
    solver.bench_iteration();
    const double t0 = comm.barrier();
    solver.bench_iteration();
    return comm.barrier() - t0;
  };
  EXPECT_LT(iter_us(true), iter_us(false));
}

TEST(DistAsync, SteadyStateCommunicationIsAllocationFree) {
  // With the bucket pool pinned, a warmed-up iteration must recycle every
  // staging and partials block: no fresh backing-store allocation (pool
  // miss) at steady state.
  const mem::scoped_mode pinned(mem::pool_mode::bucket);
  communicator comm(4, "a100");
  comm.reset();
  tridiag_cg solver(comm, index_t{1} << 12);
  solver.bench_reset();
  for (int i = 0; i < 3; ++i) {
    solver.bench_iteration_async();
    solver.bench_iteration();
  }
  const auto total_misses = [] {
    std::uint64_t misses = 0;
    for (const auto& row : mem::stats()) {
      misses += row.misses;
    }
    return misses;
  };
  const std::uint64_t warm = total_misses();
  for (int i = 0; i < 5; ++i) {
    solver.bench_iteration_async();
    solver.bench_iteration();
  }
  EXPECT_EQ(total_misses(), warm);
}

TEST(DistAsync, NoneModeStagingStillWorks) {
  // JACC_MEM_POOL=none: staging degrades to plain allocation, everything
  // stays functional.
  const mem::scoped_mode pinned(mem::pool_mode::none);
  communicator comm(2, "a100");
  comm.reset();
  double a = 3.0;
  double b = 4.0;
  double a_in = 0.0;
  double b_in = 0.0;
  comm.iexchange(0, &a, &a_in, 1, &b, &b_in, 1);
  EXPECT_DOUBLE_EQ(a_in, 4.0);
  EXPECT_DOUBLE_EQ(b_in, 3.0);
  const double vals[2] = {1.25, 2.5};
  EXPECT_EQ(comm.iallreduce_sum(vals, 2, "dist_test.none").get(), 3.75);
}

} // namespace
} // namespace jaccx::dist
