// Tests for the distributed-memory substrate: communicator semantics,
// cost model behaviour, and the distributed CG solver's correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cg/solver.hpp"
#include "dist/dist_cg.hpp"

namespace jaccx::dist {
namespace {

TEST(Communicator, RanksOwnDistinctDevices) {
  communicator comm(4, "a100");
  EXPECT_EQ(comm.ranks(), 4);
  EXPECT_NE(&comm.dev(0), &comm.dev(3));
  EXPECT_EQ(comm.dev(2).model().name, "a100");
  EXPECT_THROW(communicator(0), usage_error);
}

TEST(Communicator, SendRecvMovesDataAndChargesBoth) {
  communicator comm(2, "a100");
  comm.reset();
  std::vector<double> src = {1.0, 2.0, 3.0};
  std::vector<double> dst(3, 0.0);
  comm.send_recv(0, src.data(), 1, dst.data(), 3);
  EXPECT_EQ(dst, src);
  EXPECT_GT(comm.time_of(0), 0.0);
  EXPECT_GT(comm.time_of(1), 0.0);
  EXPECT_DOUBLE_EQ(comm.time_of(0), comm.time_of(1));
  // Latency floor for small messages.
  EXPECT_GE(comm.time_of(0), comm.nic().latency_us);
}

TEST(Communicator, ExchangeIsFullDuplex) {
  communicator comm(2, "a100");
  comm.reset();
  std::vector<double> a_out = {1.0};
  std::vector<double> b_out = {2.0};
  double a_in = 0.0;
  double b_in = 0.0;
  comm.exchange(0, a_out.data(), &a_in, 1, b_out.data(), &b_in, 1);
  EXPECT_DOUBLE_EQ(a_in, 2.0);
  EXPECT_DOUBLE_EQ(b_in, 1.0);
  const double one_way = comm.time_of(0);
  // Both directions in one charged step, not two.
  EXPECT_LT(one_way, 2.0 * comm.nic().latency_us);
}

TEST(Communicator, AllreduceSumsAndScalesWithLog2Ranks) {
  for (int ranks : {1, 2, 4, 8, 16}) {
    communicator comm(ranks, "a100");
    comm.reset();
    std::vector<double> vals(static_cast<std::size_t>(ranks), 1.5);
    const double sum = comm.allreduce_sum(vals);
    EXPECT_DOUBLE_EQ(sum, 1.5 * ranks);
    int expect_rounds = 0;
    while ((1 << expect_rounds) < ranks) {
      ++expect_rounds;
    }
    EXPECT_EQ(comm.allreduce_rounds(), expect_rounds);
    if (ranks > 1) {
      EXPECT_NEAR(comm.now_us(),
                  expect_rounds * (comm.nic().latency_us +
                                   8.0 / (comm.nic().bandwidth_gbps * 1e3)),
                  1e-9);
    }
  }
}

TEST(Communicator, BarrierAlignsClocks) {
  communicator comm(3, "a100");
  comm.reset();
  comm.dev(1).charge_h2d(1 << 20, "skew");
  comm.barrier();
  EXPECT_DOUBLE_EQ(comm.time_of(0), comm.time_of(1));
  EXPECT_DOUBLE_EQ(comm.time_of(1), comm.time_of(2));
}

TEST(Communicator, EthernetIsSlowerThanInfiniband) {
  // Both communicators bind the same device instances (rank r <-> instance
  // r), so measure each as a clock delta around its own transfer.
  std::vector<double> buf(1024, 1.0);
  std::vector<double> dst(1024, 0.0);

  communicator ib(2, "a100", nic_model::infiniband_like());
  ib.reset();
  ib.send_recv(0, buf.data(), 1, dst.data(), 1024);
  const double t_ib = ib.now_us();

  communicator eth(2, "a100", nic_model::ethernet_like());
  eth.reset();
  eth.send_recv(0, buf.data(), 1, dst.data(), 1024);
  const double t_eth = eth.now_us();

  EXPECT_GT(t_eth, 5.0 * t_ib);
}

class DistCg : public ::testing::TestWithParam<int> {};

TEST_P(DistCg, SolvesTheSameSystemAsTheSingleDeviceSolver) {
  const index_t n = 300;
  // Reference via the (serial backend) jacc solver.
  jacc::scoped_backend sb(jacc::backend::serial);
  cg::tridiag_system A(n);
  std::vector<double> b_host(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    b_host[static_cast<std::size_t>(i)] =
        std::cos(0.05 * static_cast<double>(i));
  }
  cg::darray b(b_host);
  cg::darray x_ref(n);
  const auto ref = cg::cg_solve(A, b, x_ref, {.max_iterations = 300,
                                              .tolerance = 1e-12});
  ASSERT_TRUE(ref.converged);

  communicator comm(GetParam(), "a100");
  comm.reset();
  tridiag_cg solver(comm, n);
  std::vector<double> x;
  const auto res = solver.solve(b_host, x, {.max_iterations = 300,
                                            .tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.relative_residual, 1e-11);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[static_cast<std::size_t>(i)], x_ref.host_data()[i], 1e-8)
        << "ranks=" << GetParam() << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistCg, ::testing::Values(1, 2, 3, 7),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(DistCg, ZeroRhsConvergesImmediately) {
  communicator comm(2, "a100");
  comm.reset();
  tridiag_cg solver(comm, 64);
  std::vector<double> x;
  const auto res = solver.solve(std::vector<double>(64, 0.0), x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(DistCg, MoreRanksReduceIterationTimeUntilLatencyWins) {
  // Strong scaling of one CG iteration at 1M rows: 4 ranks beat 1 rank;
  // at 64 ranks the 6 allreduce/halo latencies per iteration bite.
  const index_t n = 1 << 20;
  auto iter_us = [&](int ranks) {
    communicator comm(ranks, "a100");
    comm.reset();
    tridiag_cg solver(comm, n);
    solver.bench_reset();
    solver.bench_iteration(); // warm-up
    const double t0 = comm.barrier();
    solver.bench_iteration();
    return comm.barrier() - t0;
  };
  const double t1 = iter_us(1);
  const double t4 = iter_us(4);
  EXPECT_LT(t4, t1);
  const double t64 = iter_us(64);
  // Latency floor: 3 allreduces * 6 rounds * 1.5us + kernel launches can't
  // go below tens of microseconds regardless of rank count.
  EXPECT_GT(t64, 25.0);
}

} // namespace
} // namespace jaccx::dist
