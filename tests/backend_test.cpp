// Unit tests for backend naming, selection, and the Preferences.jl-style
// configuration chain.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "core/backend.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace jacc {
namespace {

class BackendTest : public ::testing::Test {
protected:
  void SetUp() override { saved_ = current_backend(); }
  void TearDown() override {
    set_backend(saved_);
    ::unsetenv("JACC_BACKEND");
    ::unsetenv("JACC_PREFERENCES_FILE");
  }
  backend saved_ = backend::threads;
};

TEST_F(BackendTest, NamesRoundTrip) {
  for (backend b : all_backends) {
    EXPECT_EQ(backend_from_string(to_string(b)), b);
  }
}

TEST_F(BackendTest, VendorAliases) {
  EXPECT_EQ(backend_from_string("cuda"), backend::cuda_a100);
  EXPECT_EQ(backend_from_string("CUDA"), backend::cuda_a100);
  EXPECT_EQ(backend_from_string("amdgpu"), backend::hip_mi100);
  EXPECT_EQ(backend_from_string("oneapi"), backend::oneapi_max1550);
  EXPECT_EQ(backend_from_string("rome"), backend::cpu_rome);
  EXPECT_EQ(backend_from_string("Threads"), backend::threads);
}

TEST_F(BackendTest, UnknownNameThrows) {
  EXPECT_THROW(backend_from_string("tpu"), jaccx::config_error);
}

TEST_F(BackendTest, SimulatedPredicate) {
  EXPECT_FALSE(is_simulated(backend::serial));
  EXPECT_FALSE(is_simulated(backend::threads));
  EXPECT_TRUE(is_simulated(backend::cpu_rome));
  EXPECT_TRUE(is_simulated(backend::cuda_a100));
  EXPECT_TRUE(is_simulated(backend::hip_mi100));
  EXPECT_TRUE(is_simulated(backend::oneapi_max1550));
}

TEST_F(BackendTest, BackendDeviceMapping) {
  EXPECT_EQ(backend_device(backend::serial), nullptr);
  EXPECT_EQ(backend_device(backend::threads), nullptr);
  ASSERT_NE(backend_device(backend::cuda_a100), nullptr);
  EXPECT_EQ(backend_device(backend::cuda_a100)->model().name, "a100");
  EXPECT_EQ(backend_device(backend::hip_mi100)->model().name, "mi100");
  EXPECT_EQ(backend_device(backend::oneapi_max1550)->model().name, "max1550");
  EXPECT_EQ(backend_device(backend::cpu_rome)->model().name, "rome64");
}

TEST_F(BackendTest, SetBackendTakesEffect) {
  set_backend(backend::serial);
  EXPECT_EQ(current_backend(), backend::serial);
  set_backend(backend::cuda_a100);
  EXPECT_EQ(current_backend(), backend::cuda_a100);
}

TEST_F(BackendTest, ScopedBackendRestores) {
  set_backend(backend::serial);
  {
    scoped_backend sb(backend::hip_mi100);
    EXPECT_EQ(current_backend(), backend::hip_mi100);
  }
  EXPECT_EQ(current_backend(), backend::serial);
}

TEST_F(BackendTest, EnvVariableWins) {
  ::setenv("JACC_BACKEND", "oneapi", 1);
  initialize();
  EXPECT_EQ(current_backend(), backend::oneapi_max1550);
}

TEST_F(BackendTest, EnvVariableBadValueThrows) {
  ::setenv("JACC_BACKEND", "quantum", 1);
  EXPECT_THROW(initialize(), jaccx::config_error);
}

TEST_F(BackendTest, PreferencesFileIsRead) {
  const std::string path = ::testing::TempDir() + "/LocalPreferences.toml";
  {
    std::ofstream out(path);
    out << "[JACC]\nbackend = \"mi100\"\n";
  }
  ::setenv("JACC_PREFERENCES_FILE", path.c_str(), 1);
  initialize();
  EXPECT_EQ(current_backend(), backend::hip_mi100);
  std::remove(path.c_str());
}

TEST_F(BackendTest, EnvOverridesPreferencesFile) {
  const std::string path = ::testing::TempDir() + "/LocalPreferences.toml";
  {
    std::ofstream out(path);
    out << "[JACC]\nbackend = \"mi100\"\n";
  }
  ::setenv("JACC_PREFERENCES_FILE", path.c_str(), 1);
  ::setenv("JACC_BACKEND", "serial", 1);
  initialize();
  EXPECT_EQ(current_backend(), backend::serial);
  std::remove(path.c_str());
}

TEST_F(BackendTest, MissingPreferencesFallsBackToThreads) {
  ::setenv("JACC_PREFERENCES_FILE", "/nonexistent/LocalPreferences.toml", 1);
  initialize();
  // Paper Sec. III: Base.Threads is JACC's default back end.
  EXPECT_EQ(current_backend(), backend::threads);
}

TEST_F(BackendTest, PreferencesFileWithoutJaccKeyFallsBack) {
  const std::string path = ::testing::TempDir() + "/OtherPrefs.toml";
  {
    std::ofstream out(path);
    out << "[SomethingElse]\nkey = 1\n";
  }
  ::setenv("JACC_PREFERENCES_FILE", path.c_str(), 1);
  initialize();
  EXPECT_EQ(current_backend(), backend::threads);
  std::remove(path.c_str());
}

TEST_F(BackendTest, SynchronizeIsCallable) {
  synchronize(); // no-op by contract (paper Sec. IV)
}

} // namespace
} // namespace jacc
