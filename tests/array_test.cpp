// Unit tests for jacc::array / array2d / array3d across back ends.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/jacc.hpp"

namespace jacc {
namespace {

class ArrayAllBackends : public ::testing::TestWithParam<backend> {
protected:
  void SetUp() override { set_backend(GetParam()); }
  void TearDown() override { set_backend(backend::threads); }
};

TEST_P(ArrayAllBackends, ZeroInitialized) {
  array<double> a(100);
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.host_data()[i], 0.0);
  }
  EXPECT_EQ(a.size(), 100);
}

TEST_P(ArrayAllBackends, ConstructFromVector) {
  std::vector<double> host(64);
  std::iota(host.begin(), host.end(), 1.0);
  array<double> a(host);
  EXPECT_EQ(a.size(), 64);
  for (index_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.host_data()[i], static_cast<double>(i + 1));
  }
}

TEST_P(ArrayAllBackends, ToHostRoundTrip) {
  std::vector<double> host = {3.0, 1.0, 4.0, 1.0, 5.0};
  array<double> a(host);
  EXPECT_EQ(a.to_host(), host);
}

TEST_P(ArrayAllBackends, InitializerList) {
  array<int> a{1, 2, 3};
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.host_data()[2], 3);
}

TEST_P(ArrayAllBackends, MoveSemantics) {
  array<double> a{1.0, 2.0};
  array<double> b(std::move(a));
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(a.size(), 0);
  array<double> c(std::vector<double>{9.0});
  c = std::move(b);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.host_data()[1], 2.0);
}

TEST_P(ArrayAllBackends, DeviceBindingMatchesBackend) {
  array<double> a(4);
  if (is_simulated(GetParam())) {
    ASSERT_NE(a.device(), nullptr);
    EXPECT_EQ(a.device(), backend_device(GetParam()));
    EXPECT_TRUE(a.is_simulated());
  } else {
    EXPECT_EQ(a.device(), nullptr);
    EXPECT_FALSE(a.is_simulated());
  }
}

TEST_P(ArrayAllBackends, Array2dColumnMajor) {
  std::vector<double> host(6);
  std::iota(host.begin(), host.end(), 0.0);
  array2d<double> a(host, 2, 3);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  // host is column-major: (i, j) = host[i + j*2]
  EXPECT_EQ(static_cast<double>(a(0, 0)), 0.0);
  EXPECT_EQ(static_cast<double>(a(1, 0)), 1.0);
  EXPECT_EQ(static_cast<double>(a(0, 2)), 4.0);
  EXPECT_EQ(static_cast<double>(a(1, 2)), 5.0);
}

TEST_P(ArrayAllBackends, Array3dIndexing) {
  array3d<double> a(2, 3, 4);
  a(1, 2, 3) = 42.0;
  // linear: i + rows*(j + cols*k) = 1 + 2*(2 + 3*3) = 23
  EXPECT_EQ(a.host_data()[23], 42.0);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.depth(), 4);
}

TEST_P(ArrayAllBackends, ProxyArithmetic) {
  array<double> a{10.0};
  a[0] += 5.0;
  a[0] -= 1.0;
  a[0] *= 2.0;
  a[0] /= 4.0;
  EXPECT_DOUBLE_EQ(a.host_data()[0], 7.0);
  const double v = a[0];
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST_P(ArrayAllBackends, IntegerElementType) {
  array<index_t> a{1, 2, 3};
  a[0] = a[2];
  EXPECT_EQ(a.host_data()[0], 3);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ArrayAllBackends,
                         ::testing::ValuesIn(all_backends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ArrayCharging, SimulatedConstructionChargesAllocAndH2d) {
  scoped_backend sb(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  dev.reset_clock();
  std::vector<double> host(1000, 1.0);
  array<double> a(host);
  // alloc + h2d events.
  ASSERT_GE(dev.tl().event_count(), 2u);
  EXPECT_GT(dev.tl().now_us(), dev.model().xfer_latency_us);
}

TEST(ArrayCharging, CopyToHostChargesD2h) {
  scoped_backend sb(backend::hip_mi100);
  auto& dev = *backend_device(backend::hip_mi100);
  array<double> a(100);
  dev.reset_clock();
  auto out = a.to_host();
  EXPECT_EQ(out.size(), 100u);
  ASSERT_EQ(dev.tl().event_count(), 1u);
  EXPECT_EQ(dev.tl().events()[0].kind, jaccx::sim::event_kind::transfer_d2h);
}

TEST(ArrayCharging, RealBackendsChargeNothing) {
  scoped_backend sb(backend::threads);
  array<double> a(100);
  EXPECT_EQ(a.device(), nullptr);
  auto out = a.to_host(); // must not touch any simulated device
  EXPECT_EQ(out.size(), 100u);
}

TEST(ArrayCharging, ZeroSizeArraysAreLegal) {
  for (backend b : all_backends) {
    scoped_backend sb(b);
    array<double> a(0);
    EXPECT_EQ(a.size(), 0);
    EXPECT_TRUE(a.to_host().empty());
  }
}

} // namespace
} // namespace jacc
