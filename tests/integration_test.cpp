// Integration tests spanning modules: full JACC workflows on simulated
// devices, checking both results and the *shape* of the charged timeline.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "blas/native_gpu.hpp"
#include "cg/solver.hpp"
#include "core/jacc.hpp"
#include "lbm/simulation.hpp"

namespace {

using jacc::backend;
using jacc::index_t;

double sim_time(backend b) {
  return jacc::backend_device(b)->tl().now_us();
}

void reset_device(backend b) {
  auto* dev = jacc::backend_device(b);
  dev->reset_clock();
  dev->cache().reset();
}

TEST(Integration, FullAxpyDotWorkflowOnGpu) {
  // The asserted timeline shape (per-call reduce scratch + zero fills) is
  // the paper-fidelity JACC_MEM_POOL=none contract.
  const jaccx::mem::scoped_mode fidelity(jaccx::mem::pool_mode::none);
  jacc::scoped_backend sb(backend::cuda_a100);
  reset_device(backend::cuda_a100);

  const index_t n = 1 << 16;
  std::vector<double> xs(static_cast<std::size_t>(n), 1.0);
  std::vector<double> ys(static_cast<std::size_t>(n), 2.0);
  jacc::array<double> x(xs), y(ys); // charged H2D
  jaccx::blas::jacc_axpy(n, 2.5, x, y);
  const double dot = jaccx::blas::jacc_dot(n, x, y);
  EXPECT_DOUBLE_EQ(dot, 6.0 * 2.0 * static_cast<double>(n));

  const auto& tl = jacc::backend_device(backend::cuda_a100)->tl();
  int kernels = 0;
  int h2d = 0;
  int d2h = 0;
  for (const auto& e : tl.events()) {
    kernels += e.kind == jaccx::sim::event_kind::kernel;
    h2d += e.kind == jaccx::sim::event_kind::transfer_h2d;
    d2h += e.kind == jaccx::sim::event_kind::transfer_d2h;
  }
  EXPECT_EQ(h2d, 2);     // two array uploads
  EXPECT_EQ(kernels, 5); // axpy + 2 zero-fills + two-phase reduce
  EXPECT_EQ(d2h, 1);     // scalar result
}

TEST(Integration, DotCostsMoreThanAxpyOnEveryGpu) {
  // Paper Sec. V-A1: DOT trails AXPY on all GPUs because of the two-kernel
  // reduction and the scalar transfer.
  for (backend b : {backend::cuda_a100, backend::hip_mi100,
                    backend::oneapi_max1550}) {
    jacc::scoped_backend sb(b);
    const index_t n = 1 << 18;
    std::vector<double> xs(static_cast<std::size_t>(n), 1.0);
    jacc::array<double> x(xs), y(xs);

    reset_device(b);
    jaccx::blas::jacc_axpy(n, 2.0, x, y);
    const double axpy_t = sim_time(b);

    reset_device(b);
    jaccx::blas::jacc_dot(n, x, y);
    const double dot_t = sim_time(b);

    EXPECT_GT(dot_t, axpy_t) << jacc::to_string(b);
  }
}

TEST(Integration, LbmChargesOneKernelPerStep) {
  jacc::scoped_backend sb(backend::hip_mi100);
  jaccx::lbm::simulation sim(jaccx::lbm::params{.size = 24, .tau = 0.8});
  reset_device(backend::hip_mi100);
  sim.run(3);
  const auto& tl = jacc::backend_device(backend::hip_mi100)->tl();
  int kernels = 0;
  for (const auto& e : tl.events()) {
    kernels += e.kind == jaccx::sim::event_kind::kernel;
  }
  EXPECT_EQ(kernels, 3) << "single fused kernel per LBM step (Fig. 10)";
}

TEST(Integration, CgIterationLaunchCountMatchesFig12) {
  // Fig. 12's 27-launch iteration counts the per-reduce zero fills: pin
  // the paper-fidelity allocation mode, and the unfused launch sequence
  // (JACC_FUSE=all regroups the chain into 5 launches by design).
  const jaccx::mem::scoped_mode fidelity(jaccx::mem::pool_mode::none);
  const jacc::scoped_fuse unfused(jacc::fuse_mode::none);
  jacc::scoped_backend sb(backend::cuda_a100);
  jaccx::cg::paper_state st(1 << 12);
  reset_device(backend::cuda_a100);
  jaccx::cg::paper_iteration(st);
  const auto& tl = jacc::backend_device(backend::cuda_a100)->tl();
  int kernels = 0;
  int d2h = 0;
  for (const auto& e : tl.events()) {
    kernels += e.kind == jaccx::sim::event_kind::kernel;
    d2h += e.kind == jaccx::sim::event_kind::transfer_d2h;
  }
  // 1 matvec + 3 axpy + 3 copies + 5 dots * (2 fills + 2 kernels) = 27
  // kernels, one D2H per dot.
  EXPECT_EQ(kernels, 27);
  EXPECT_EQ(d2h, 5);
}

TEST(Integration, SameSourceRunsOnAllSixBackends) {
  // The paper's headline: one JACC source, every target.  Run an identical
  // mini-pipeline everywhere and compare results.
  const index_t n = 4096;
  std::vector<double> base(static_cast<std::size_t>(n));
  std::iota(base.begin(), base.end(), 0.0);

  double expect = 0.0;
  bool first = true;
  for (backend b : jacc::all_backends) {
    jacc::scoped_backend sb(b);
    jacc::array<double> x(base);
    jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n),
                                              1.0));
    jaccx::blas::jacc_axpy(n, 0.5, x, y);
    const double got = jaccx::blas::jacc_dot(n, x, y);
    if (first) {
      expect = got;
      first = false;
    } else {
      EXPECT_NEAR(got, expect, 1e-9 * std::abs(expect))
          << jacc::to_string(b);
    }
  }
}

TEST(Integration, WarmCacheSecondPassIsCheaper) {
  // Temporal locality must be visible end-to-end through jacc::array.
  jacc::scoped_backend sb(backend::cuda_a100);
  const index_t n = 1 << 14; // 128 KiB per array, far below the 40 MiB L2
  std::vector<double> xs(static_cast<std::size_t>(n), 1.0);
  jacc::array<double> x(xs), y(xs);

  reset_device(backend::cuda_a100);
  jaccx::blas::jacc_axpy(n, 2.0, x, y);
  const double cold = sim_time(backend::cuda_a100);

  const double t0 = sim_time(backend::cuda_a100);
  jaccx::blas::jacc_axpy(n, 2.0, x, y);
  const double warm = sim_time(backend::cuda_a100) - t0;
  EXPECT_LT(warm, cold);
}

TEST(Integration, ChromeTraceExportsRealWorkflow) {
  jacc::scoped_backend sb(backend::oneapi_max1550);
  reset_device(backend::oneapi_max1550);
  jacc::array<double> x(std::vector<double>(256, 1.0));
  jaccx::blas::jacc_dot(256, x, x);
  const auto json =
      jacc::backend_device(backend::oneapi_max1550)->tl().to_chrome_trace();
  EXPECT_NE(json.find("jacc.dot"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"d2h\""), std::string::npos);
}

} // namespace
