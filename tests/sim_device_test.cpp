// Unit tests for the device instance: timelines, charging, tracking.
#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace jaccx::sim {
namespace {

device_model tiny_model() {
  device_model m;
  m.name = "tiny";
  m.kind = device_kind::gpu;
  m.parallel_units = 4;
  m.dram_bw_gbps = 1000.0;
  m.cache_bw_gbps = 4000.0;
  m.cache_bytes = 1 << 16;
  m.cache_line_bytes = 64;
  m.cache_assoc = 8;
  m.launch_overhead_us = 1.0;
  m.per_index_overhead_ns = 0.0;
  m.per_block_overhead_ns = 0.0;
  m.alloc_overhead_us = 0.5;
  m.xfer_bw_gbps = 10.0;
  m.xfer_latency_us = 5.0;
  return m;
}

TEST(Device, ClockStartsAtZero) {
  device dev(tiny_model());
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.0);
  EXPECT_EQ(dev.tl().event_count(), 0u);
}

TEST(Device, ChargesAllocAndTransfers) {
  device dev(tiny_model());
  dev.charge_alloc(1024, "buf");
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.5);
  EXPECT_EQ(dev.bytes_live(), 1024u);
  dev.charge_h2d(100'000, "buf"); // 5 + 100k/10e3 = 15 us
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 15.5);
  dev.charge_d2h(8, "scalar"); // latency dominated
  EXPECT_NEAR(dev.tl().now_us(), 20.5, 0.01);
  dev.charge_free(1024);
  EXPECT_EQ(dev.bytes_live(), 0u);
  EXPECT_EQ(dev.bytes_allocated_total(), 1024u);
}

TEST(Device, TrackIsNoopOutsideLaunch) {
  device dev(tiny_model());
  int x = 0;
  dev.track(&x, 4);
  EXPECT_EQ(dev.last_tally().dram_bytes, 0u);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.0);
}

TEST(Device, LaunchAccumulatesTally) {
  device dev(tiny_model());
  // 64-byte aligned so exactly 8 doubles share each modeled cache line.
  jaccx::aligned_buffer<double> data(64, 64);
  dev.begin_launch();
  EXPECT_TRUE(dev.launch_active());
  for (std::size_t i = 0; i < data.size(); ++i) {
    dev.track(&data[i], sizeof(double));
  }
  dev.add_flops(100);
  const auto t = dev.end_launch("k", launch_flavor{}, 64, 1.0, 2);
  EXPECT_FALSE(dev.launch_active());
  // 64 doubles over 8 cold lines: 8 line fills + 56 in-line hits.
  EXPECT_EQ(t.dram_bytes, 8u * 64u);
  EXPECT_EQ(t.cache_bytes, 56u * 8u);
  EXPECT_EQ(t.flops, 100u + 64u); // explicit + hint (1 flop/index)
  EXPECT_EQ(t.indices, 64u);
  EXPECT_EQ(t.blocks, 2u);
  EXPECT_GT(dev.tl().now_us(), 1.0); // at least the launch overhead
}

TEST(Device, NestedLaunchThrows) {
  device dev(tiny_model());
  dev.begin_launch();
  EXPECT_THROW(dev.begin_launch(), usage_error);
  dev.end_launch("k", launch_flavor{}, 0, 0.0, 0);
}

TEST(Device, TimelineEventsRecorded) {
  device dev(tiny_model());
  dev.charge_alloc(64, "a");
  dev.begin_launch();
  dev.end_launch("my_kernel", launch_flavor{}, 10, 0.0, 1);
  ASSERT_EQ(dev.tl().event_count(), 2u);
  EXPECT_EQ(dev.tl().events()[0].kind, event_kind::alloc);
  EXPECT_EQ(dev.tl().events()[1].kind, event_kind::kernel);
  EXPECT_EQ(dev.tl().events()[1].name, "my_kernel");
  EXPECT_DOUBLE_EQ(dev.tl().events()[1].start_us, 0.5);
}

TEST(Device, TimelineResetRewindsClock) {
  device dev(tiny_model());
  dev.charge_alloc(64, "a");
  dev.tl().reset();
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.0);
  EXPECT_EQ(dev.tl().event_count(), 0u);
}

TEST(Device, LoggingCanBeDisabled) {
  device dev(tiny_model());
  dev.tl().set_logging(false);
  dev.charge_alloc(64, "a");
  EXPECT_EQ(dev.tl().event_count(), 0u);
  EXPECT_DOUBLE_EQ(dev.tl().now_us(), 0.5); // clock still advances
  dev.tl().set_logging(true);
}

TEST(Device, ChromeTraceContainsEvents) {
  device dev(tiny_model());
  dev.charge_h2d(64, "xfer");
  dev.begin_launch();
  dev.end_launch("kern", launch_flavor{}, 1, 0.0, 1);
  const auto json = dev.tl().to_chrome_trace();
  EXPECT_NE(json.find("\"name\": \"kern\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"h2d\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Device, RegistryReturnsSameInstance) {
  device& a = get_device("a100");
  device& b = get_device("a100");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.model().name, "a100");
  device& c = get_device("rome64");
  EXPECT_NE(&a, &c);
}

TEST(Device, RegistryRejectsUnknown) {
  EXPECT_THROW(get_device("h100"), jaccx::config_error);
}

TEST(Device, CacheHitsLowerCost) {
  // Two identical launches; the second sees a warm cache and must be faster.
  auto m = tiny_model();
  m.cache_bytes = 1 << 20;
  device dev(m);
  std::vector<double> data(1024);
  const auto sweep = [&] {
    dev.begin_launch();
    for (auto& d : data) {
      dev.track(&d, sizeof(double));
    }
    const double before = dev.tl().now_us();
    dev.end_launch("sweep", launch_flavor{}, data.size(), 0.0, 1);
    return dev.tl().now_us() - before;
  };
  const double cold = sweep();
  const double warm = sweep();
  EXPECT_LT(warm, cold);
}

TEST(DeviceArena, IdenticalSequencesGetIdenticalAddresses) {
  // The arena is what makes simulated times reproducible: the same
  // allocation sequence must land at the same addresses after a full drain.
  device dev(tiny_model());
  std::vector<void*> first;
  {
    auto* a = dev.arena_allocate(1000);
    auto* b = dev.arena_allocate(4096);
    auto* c = dev.arena_allocate(8);
    first = {a, b, c};
    dev.arena_release();
    dev.arena_release();
    dev.arena_release();
  }
  {
    auto* a = dev.arena_allocate(1000);
    auto* b = dev.arena_allocate(4096);
    auto* c = dev.arena_allocate(8);
    EXPECT_EQ(a, first[0]);
    EXPECT_EQ(b, first[1]);
    EXPECT_EQ(c, first[2]);
    dev.arena_release();
    dev.arena_release();
    dev.arena_release();
  }
}

TEST(DeviceArena, AllocationsDoNotOverlapWhileLive) {
  device dev(tiny_model());
  auto* a = static_cast<char*>(dev.arena_allocate(100));
  auto* b = static_cast<char*>(dev.arena_allocate(100));
  EXPECT_GE(b, a + 100);
  // 256-byte device-allocation granularity.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 256, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 256, 0u);
  dev.arena_release();
  dev.arena_release();
}

TEST(DeviceArena, GrowsWithDedicatedChunksForHugeRequests) {
  device dev(tiny_model());
  const std::size_t before = dev.arena_chunks();
  auto* big = dev.arena_allocate(std::size_t{300} << 20); // > default chunk
  EXPECT_NE(big, nullptr);
  EXPECT_GT(dev.arena_chunks(), before);
  dev.arena_release();
}

TEST(DeviceRegistry, InstancesAreDistinctButShareTheModel) {
  device& d0 = get_device_instance("mi100", 0);
  device& d1 = get_device_instance("mi100", 1);
  device& d1_again = get_device_instance("mi100", 1);
  EXPECT_EQ(&d0, &get_device("mi100"));
  EXPECT_NE(&d0, &d1);
  EXPECT_EQ(&d1, &d1_again);
  EXPECT_EQ(d1.model().name, "mi100");
  EXPECT_THROW(get_device_instance("mi100", -1), jaccx::usage_error);
}

} // namespace
} // namespace jaccx::sim
