// Fixture profiling tool loaded through JACC_TOOLS_LIBS (or directly by
// prof::load_tool_library in tests).  Counts every callback into atomics;
// the counts are readable in-process via jaccp_test_tool_counts (the test
// dlopens this library itself and reads them back) and are printed as one
// summary line from jaccp_finalize_library so the CI dlopen leg can grep
// for proof the tool observed the run.
#include <atomic>
#include <cstdint>
#include <cstdio>

namespace {

std::atomic<std::uint64_t> g_begins{0}; // begin_parallel_for + _reduce
std::atomic<std::uint64_t> g_ends{0};   // end_parallel_for + _reduce
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_copies{0};
std::atomic<std::uint64_t> g_regions{0};
std::atomic<int> g_initialized{0};

} // namespace

extern "C" {

void jaccp_init_library(int load_seq, std::uint64_t interface_version,
                        std::uint32_t device_count, void* device_info) {
  (void)load_seq;
  (void)interface_version;
  (void)device_count;
  (void)device_info;
  g_initialized.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_finalize_library(void) {
  std::fprintf(stderr,
               "jaccp_test_tool: begins=%llu ends=%llu allocs=%llu "
               "copies=%llu regions=%llu\n",
               static_cast<unsigned long long>(
                   g_begins.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   g_ends.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   g_allocs.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   g_copies.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   g_regions.load(std::memory_order_relaxed)));
}

void jaccp_begin_parallel_for(const char* name, std::uint32_t device_id,
                              std::uint64_t* kernel_id) {
  (void)name;
  (void)device_id;
  (void)kernel_id;
  g_begins.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_end_parallel_for(std::uint64_t kernel_id) {
  (void)kernel_id;
  g_ends.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_begin_parallel_reduce(const char* name, std::uint32_t device_id,
                                 std::uint64_t* kernel_id) {
  (void)name;
  (void)device_id;
  (void)kernel_id;
  g_begins.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_end_parallel_reduce(std::uint64_t kernel_id) {
  (void)kernel_id;
  g_ends.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_allocate_data(const char* name, std::uint64_t bytes) {
  (void)name;
  (void)bytes;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_deallocate_data(std::uint64_t bytes) { (void)bytes; }

void jaccp_copy_data(const char* name, int to_device, std::uint64_t bytes) {
  (void)name;
  (void)to_device;
  (void)bytes;
  g_copies.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_push_profile_region(const char* name) {
  (void)name;
  g_regions.fetch_add(1, std::memory_order_relaxed);
}

void jaccp_pop_profile_region(void) {}

/// Test back-channel (not part of the tool ABI): the test dlopens this
/// library again (same handle, same globals) and reads the counters.
void jaccp_test_tool_counts(std::uint64_t* begins, std::uint64_t* ends) {
  if (begins != nullptr) {
    *begins = g_begins.load(std::memory_order_relaxed);
  }
  if (ends != nullptr) {
    *ends = g_ends.load(std::memory_order_relaxed);
  }
}

} // extern "C"
