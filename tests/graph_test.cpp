// Tests for jacc::graph: capture & replay of queue DAGs.  Replay must be
// bit-exact with eager issue on every backend (results always; sim charges
// too), instance update must re-point captured bindings, and the lifetime /
// concurrency contracts (graph outliving its queue, replay concurrent with
// an unrelated capture, lane re-resolution after initialize()) must hold —
// the last two are TSan stress targets (see scripts/verify.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/jacc.hpp"
#include "sim/device.hpp"
#include "support/error.hpp"

namespace jacc {
namespace {

void axpy(index_t i, double alpha, const array<double>& x, array<double>& y) {
  y[i] = y[i] + alpha * x[i];
}

void scale(index_t i, double alpha, const array<double>& x, array<double>& y) {
  y[i] = alpha * x[i];
}

double dot_term(index_t i, const array<double>& x, const array<double>& y) {
  return x[i] * y[i];
}

std::vector<double> iota_vec(index_t n, double start) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = start + static_cast<double>(i);
  }
  return v;
}

class GraphTest : public ::testing::Test {
protected:
  void SetUp() override { saved_ = current_backend(); }
  void TearDown() override { set_backend(saved_); }
  backend saved_ = backend::threads;
};

// --- capture/replay == eager, results ---------------------------------------

TEST_F(GraphTest, CaptureReplaySerialMatchesEager) {
  set_backend(backend::serial);
  const index_t n = 4096;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);

  // Eager reference: two axpy rounds plus a dot after the first round.
  array<double> xe(hx), ye(hy);
  parallel_for(n, axpy, 2.0, xe, ye);
  const std::vector<double> round1 = ye.to_host();
  const double dot1 = parallel_reduce(n, dot_term, xe, ye);
  parallel_for(n, axpy, 2.0, xe, ye);
  const double dot2 = parallel_reduce(n, dot_term, xe, ye);

  array<double> x(hx), y(hy);
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  queue q("graph.serial");
  q.begin_capture();
  parallel_for(q, n, axpy, 2.0, x, y);
  auto fdot = q.parallel_reduce(n, dot_term, x, y);
  const event ecopy = y.copy_to_host(q, out.data());
  EXPECT_TRUE(q.capturing());
  EXPECT_TRUE(ecopy.complete()); // placeholder marker, born complete
  graph g = q.end_capture();
  EXPECT_FALSE(q.capturing());
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.replays(), 0u);

  g.launch(q);
  q.synchronize();
  EXPECT_EQ(out, round1); // the captured D2H copy ran, bit-exact
  EXPECT_DOUBLE_EQ(fdot.get(), dot1);

  g.launch(q);
  q.synchronize();
  EXPECT_DOUBLE_EQ(fdot.get(), dot2);
  EXPECT_EQ(g.replays(), 2u);
}

TEST_F(GraphTest, CaptureReplayThreadsMatchesEagerQueued) {
  set_backend(backend::threads);
  const index_t n = 10'000;
  const auto hx = iota_vec(n, 1.0);
  const auto hy = iota_vec(n, 0.5);

  array<double> xe(hx), ye(hy);
  queue qe("graph.eager");
  parallel_for(qe, n, axpy, 2.0, xe, ye);
  auto fe = qe.parallel_reduce(n, dot_term, xe, ye);
  qe.synchronize();

  array<double> x(hx), y(hy);
  queue q("graph.threads");
  q.begin_capture();
  parallel_for(q, n, axpy, 2.0, x, y);
  auto f = q.parallel_reduce(n, dot_term, x, y);
  graph g = q.end_capture();

  g.launch(q);
  q.synchronize();
  EXPECT_EQ(y.to_host(), ye.to_host()); // bit-exact
  EXPECT_DOUBLE_EQ(f.get(), fe.get());
}

// --- capture/replay == eager, simulated charges -----------------------------

TEST_F(GraphTest, SimReplayChargesMatchEager) {
  // Replay re-runs the same charge path under the queue's stream, so the
  // per-launch model time must be bit-identical to eager issue.
  set_backend(backend::cuda_a100);
  auto& dev = *backend_device(backend::cuda_a100);
  const index_t n = 1 << 12;
  const auto hx = iota_vec(n, 1.0);

  // Warm the mem pool so both measured runs see identical hit patterns.
  {
    array<double> x(hx), y(hx);
    queue q("graph.warm");
    parallel_for(q, n, axpy, 2.0, x, y);
    auto f = q.parallel_reduce(n, dot_term, x, y);
    (void)f.get();
    q.synchronize();
  }

  std::vector<double> eager_out(static_cast<std::size_t>(n));
  double eager_us = 0.0, eager_dot = 0.0;
  dev.reset_clock();
  dev.cache().reset();
  {
    array<double> x(hx), y(hx);
    queue q("graph.eagersim");
    const double t0 = q.now_us();
    parallel_for(q, n, axpy, 2.0, x, y);
    auto f = q.parallel_reduce(n, dot_term, x, y);
    y.copy_to_host(q, eager_out.data());
    q.synchronize();
    eager_us = q.now_us() - t0;
    eager_dot = f.get();
  }

  std::vector<double> graph_out(static_cast<std::size_t>(n));
  double graph_us = 0.0, graph_dot = 0.0;
  dev.reset_clock();
  dev.cache().reset();
  {
    array<double> x(hx), y(hx);
    queue q("graph.replaysim");
    q.begin_capture();
    parallel_for(q, n, axpy, 2.0, x, y);
    auto f = q.parallel_reduce(n, dot_term, x, y);
    y.copy_to_host(q, graph_out.data());
    graph g = q.end_capture();
    const double t0 = q.now_us();
    g.launch(q);
    q.synchronize();
    graph_us = q.now_us() - t0;
    graph_dot = f.get();
  }

  EXPECT_DOUBLE_EQ(eager_us, graph_us);
  EXPECT_EQ(eager_out, graph_out);
  EXPECT_DOUBLE_EQ(eager_dot, graph_dot);
  dev.reset_clock();
}

// --- instance update --------------------------------------------------------

TEST_F(GraphTest, InstanceUpdateRebindsArrayAndScalar) {
  set_backend(backend::threads);
  const index_t n = 2048;
  array<double> x1(iota_vec(n, 1.0)), x2(iota_vec(n, 100.0));
  array<double> out(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  binding<array<double>> bx(x1);
  scalar_binding<double> alpha(2.0);
  EXPECT_DOUBLE_EQ(alpha.get(), 2.0);
  EXPECT_EQ(&bx.get(), &x1);

  queue q("graph.update");
  q.begin_capture();
  parallel_for(q, n, scale, alpha, bx, out);
  graph g = q.end_capture();

  g.launch(q);
  q.synchronize();
  {
    const auto h = out.to_host();
    EXPECT_DOUBLE_EQ(h[0], 2.0 * 1.0);
    EXPECT_DOUBLE_EQ(h[static_cast<std::size_t>(n) - 1],
                     2.0 * static_cast<double>(n));
  }

  // Re-point the input and the scalar; the recorded node must see both.
  g.update(bx, x2);
  g.update_scalar(alpha, 3.0);
  g.launch(q);
  q.synchronize();
  {
    const auto h = out.to_host();
    EXPECT_DOUBLE_EQ(h[0], 3.0 * 100.0);
    EXPECT_DOUBLE_EQ(h[static_cast<std::size_t>(n) - 1],
                     3.0 * (100.0 + static_cast<double>(n) - 1.0));
  }
}

// --- future::then -----------------------------------------------------------

TEST_F(GraphTest, FutureThenRunsEagerlyOnQueue) {
  set_backend(backend::threads);
  const index_t n = 4096;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 2.0));
  const double expect = parallel_reduce(n, dot_term, x, y);

  queue q("graph.then");
  auto f = q.parallel_reduce(n, dot_term, x, y);
  std::atomic<double> seen{0.0};
  const event e = f.then(q, [&seen](double v) { seen.store(v); });
  e.wait();
  EXPECT_DOUBLE_EQ(seen.load(), expect);

  // Default queue: synchronous model, callback runs inline.
  auto f0 = queue::default_queue().parallel_reduce(n, dot_term, x, y);
  double seen0 = 0.0;
  f0.then(queue::default_queue(), [&seen0](double v) { seen0 = v; });
  EXPECT_DOUBLE_EQ(seen0, expect);
}

TEST_F(GraphTest, FutureThenInGraphFeedsScalarBinding) {
  // The CG plumbing shape: a captured reduction feeds a host node that
  // stores into a scalar_binding consumed by a later kernel node.
  set_backend(backend::serial);
  const index_t n = 1024;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 0.0));
  scalar_binding<double> alpha(0.0);

  queue q("graph.thenrec");
  q.begin_capture();
  auto f = q.parallel_reduce(n, dot_term, x, x);
  f.then(q, [alpha](double v) { alpha.set(1.0 / v); });
  parallel_for(q, n, scale, alpha, x, y);
  graph g = q.end_capture();

  g.launch(q);
  q.synchronize();
  const double xx = parallel_reduce(n, dot_term, x, x);
  const auto h = y.to_host();
  EXPECT_DOUBLE_EQ(h[0], 1.0 / xx);
  EXPECT_DOUBLE_EQ(h[static_cast<std::size_t>(n) - 1],
                   static_cast<double>(n) / xx);
}

// --- multi-queue capture ----------------------------------------------------

TEST_F(GraphTest, MultiQueueCaptureHonorsCrossEdgeOnThreads) {
  set_backend(backend::threads);
  const index_t n = 10'000;
  array<double> x(iota_vec(n, 1.0));
  array<double> y(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  array<double> z(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  queue qa("graph.mq.a"), qb("graph.mq.b");
  capture_scope sc{&qa, &qb};
  parallel_for(qa, n, scale, 2.0, x, y); // y = 2x on qa
  const event e = qa.record();
  qb.wait(e);                            // edge: qb's kernel reads y
  parallel_for(qb, n, scale, 3.0, y, z); // z = 3y on qb
  graph g = sc.end();
  EXPECT_EQ(g.node_count(), 3u); // kernel + kernel + wait edge

  for (int round = 0; round < 2; ++round) {
    const event done = g.launch(qa);
    done.wait();
    qa.synchronize();
    qb.synchronize();
    const auto h = z.to_host();
    EXPECT_DOUBLE_EQ(h[0], 6.0 * 1.0);
    EXPECT_DOUBLE_EQ(h[static_cast<std::size_t>(n) - 1],
                     6.0 * static_cast<double>(n));
  }
}

TEST_F(GraphTest, MultiQueueCaptureAdvancesConsumerStreamOnSim) {
  set_backend(backend::cuda_a100);
  const index_t n = 1 << 16; // big producer kernel...
  array<double> x(iota_vec(n, 1.0));
  array<double> y(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  array<double> z(std::vector<double>(4, 0.0));

  queue qa("graph.mq.sima"), qb("graph.mq.simb");
  capture_scope sc{&qa, &qb};
  parallel_for(qa, n, scale, 2.0, x, y);
  qb.wait(qa.record());
  parallel_for(qb, 4, scale, 3.0, y, z); // ...tiny consumer kernel
  graph g = sc.end();

  g.launch(qa);
  // The cross-queue edge must drag qb's stream to (at least) qa's finish
  // time; without it qb would only carry the tiny kernel's charge.
  EXPECT_GE(qb.now_us(), qa.now_us());
  const auto h = z.to_host();
  EXPECT_DOUBLE_EQ(h[0], 6.0);
}

// --- lifetime & re-initialization -------------------------------------------

TEST_F(GraphTest, GraphOutlivesItsQueues) {
  set_backend(backend::threads);
  const index_t n = 4096;
  array<double> x(iota_vec(n, 1.0));
  array<double> y(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  graph g;
  {
    queue q("graph.shortlived");
    q.begin_capture();
    parallel_for(q, n, scale, 2.0, x, y);
    g = q.end_capture();
  } // last user handle to the captured queue dies here

  const event done = g.launch(); // replays on the recorded (kept-alive) queue
  done.wait();
  const auto h = y.to_host();
  EXPECT_DOUBLE_EQ(h[static_cast<std::size_t>(n) - 1],
                   2.0 * static_cast<double>(n));
}

TEST_F(GraphTest, ReplayAfterInitializeReresolvesLanes) {
  set_backend(backend::threads);
  const char* old_env = std::getenv("JACC_QUEUES");
  const std::string saved_env = old_env != nullptr ? old_env : "";
  const index_t n = 4096;
  {
    array<double> v(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    queue q("graph.reinit");
    q.begin_capture();
    parallel_for(
        q, n, [](index_t i, array<double>& a) { a[i] = a[i] + 1.0; }, v);
    graph g = q.end_capture();

    g.launch(q);
    q.synchronize();

    ::setenv("JACC_QUEUES", "1", 1);
    initialize(); // quiesces lanes and re-reads the lane policy
    set_backend(backend::threads);
    // The recorded queue's cached lane is stale; replay must re-resolve
    // against the new layout rather than submit to a drained lane.
    g.launch(q);
    q.synchronize();

    ::setenv("JACC_QUEUES", "2", 1);
    initialize();
    set_backend(backend::threads);
    g.launch(q);
    q.synchronize();

    EXPECT_DOUBLE_EQ(v.host_data()[0], 3.0);
    EXPECT_DOUBLE_EQ(v.host_data()[n - 1], 3.0);
  }
  if (old_env != nullptr) {
    ::setenv("JACC_QUEUES", saved_env.c_str(), 1);
  } else {
    ::unsetenv("JACC_QUEUES");
  }
  initialize();
}

TEST_F(GraphTest, ReplayConcurrentWithCaptureOnAnotherQueue) {
  // A replay in flight must not interfere with an unrelated capture (the
  // capture check on the hot path is one atomic load).  TSan target.
  set_backend(backend::threads);
  const index_t n = 2048;
  array<double> x(iota_vec(n, 1.0));
  array<double> y(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  queue qr("graph.conc.replay");
  qr.begin_capture();
  parallel_for(qr, n, scale, 2.0, x, y);
  graph g = qr.end_capture();

  constexpr int kRounds = 50;
  std::thread replayer([&] {
    for (int i = 0; i < kRounds; ++i) {
      g.launch(qr);
      qr.synchronize();
    }
  });
  std::thread capturer([&] {
    array<double> cx(iota_vec(n, 2.0));
    array<double> cy(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    for (int i = 0; i < kRounds; ++i) {
      queue qc("graph.conc.capture");
      qc.begin_capture();
      parallel_for(qc, n, scale, 4.0, cx, cy);
      graph cg = qc.end_capture();
      cg.launch(qc);
      qc.synchronize();
    }
    EXPECT_DOUBLE_EQ(cy.to_host()[0], 8.0);
  });
  replayer.join();
  capturer.join();
  EXPECT_DOUBLE_EQ(y.to_host()[0], 2.0);
  EXPECT_EQ(g.replays(), static_cast<std::uint64_t>(kRounds));
}

// --- cross-device wait (eager path fix) -------------------------------------

TEST_F(GraphTest, CrossDeviceWaitChargesConsumerStream) {
  // q.wait(e) where e was recorded on another device must become a stream
  // edge on the *consumer's* device (clocks share an origin), not a host
  // synchronization.
  set_backend(backend::cuda_a100);
  backend_device(backend::hip_mi100)->reset_clock();
  const index_t n = 1 << 16;
  array<double> x(iota_vec(n, 1.0));
  array<double> y(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  queue qa("graph.xdev.a");
  parallel_for(qa, n, scale, 2.0, x, y);
  const event e = qa.record();
  ASSERT_TRUE(e.valid());
  EXPECT_GT(e.sim_time_us(), 0.0);

  set_backend(backend::hip_mi100);
  queue qb("graph.xdev.b");
  qb.wait(e);
  EXPECT_GE(qb.now_us(), e.sim_time_us());
}

// --- error paths ------------------------------------------------------------

TEST_F(GraphTest, ContractViolationsThrow) {
  set_backend(backend::threads);
  const index_t n = 256;
  array<double> x(iota_vec(n, 1.0)), y(iota_vec(n, 2.0));

  queue q("graph.errors");
  EXPECT_THROW(q.end_capture(), jaccx::usage_error); // end without begin
  EXPECT_THROW(queue::default_queue().begin_capture(), jaccx::usage_error);

  q.begin_capture();
  EXPECT_THROW(q.begin_capture(), jaccx::usage_error); // already recording
  EXPECT_THROW(q.synchronize(), jaccx::usage_error);   // host-blocking
  EXPECT_THROW((void)parallel_reduce(q, n, dot_term, x, y),
               jaccx::usage_error); // host-blocking reduce
  graph g = q.end_capture();
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.node_count(), 0u);

  graph empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.launch(), jaccx::usage_error);
  EXPECT_THROW(g.launch(queue::default_queue()), jaccx::usage_error);

  capture_scope sc{&q};
  (void)sc.end();
  EXPECT_THROW((void)sc.end(), jaccx::usage_error); // end called twice

  // Replay under a different backend than the capture recorded.
  queue qs("graph.errors.serial");
  qs.begin_capture();
  parallel_for(qs, n, axpy, 2.0, x, y);
  graph gt = qs.end_capture();
  set_backend(backend::serial);
  EXPECT_THROW(gt.launch(qs), jaccx::usage_error);
  set_backend(backend::threads);
  gt.launch(qs); // and fine again on the captured backend
  qs.synchronize();
}

} // namespace
} // namespace jacc
