// Unit tests for the Base.Threads-style fork/join pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "threadpool/thread_pool.hpp"

namespace jaccx::pool {
namespace {

TEST(ThreadPool, SingleWorkerRunsInline) {
  thread_pool p(1);
  EXPECT_EQ(p.size(), 1u);
  std::vector<int> hits(100, 0);
  p.parallel_for_index(100, [&](index_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  thread_pool p(4);
  const index_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  p.parallel_for_index(n, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  thread_pool p(4);
  bool called = false;
  p.parallel_for_index(0, [&](index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, FewerIndicesThanWorkers) {
  thread_pool p(8);
  std::vector<std::atomic<int>> hits(3);
  p.parallel_for_index(3, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  thread_pool p(4);
  std::mutex m;
  std::vector<range> seen;
  p.parallel_chunks(1000, [&](unsigned, range r) {
    std::lock_guard<std::mutex> lock(m);
    seen.push_back(r);
  });
  index_t total = 0;
  for (const auto& r : seen) {
    total += r.size();
  }
  EXPECT_EQ(total, 1000);
  EXPECT_LE(seen.size(), 4u);
}

TEST(ThreadPool, WorkerIdsAreDistinctPerRegion) {
  thread_pool p(4);
  std::mutex m;
  std::set<unsigned> workers;
  p.parallel_chunks(4000, [&](unsigned w, range) {
    std::lock_guard<std::mutex> lock(m);
    workers.insert(w);
  });
  // Exactly one chunk per worker with static chunking of a large range.
  EXPECT_EQ(workers.size(), 4u);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  thread_pool p(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    p.parallel_for_index(100, [&](index_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50L * (99 * 100 / 2));
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  thread_pool p(4);
  const index_t n = 1 << 16;
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::iota(xs.begin(), xs.end(), 0.0);

  struct alignas(64) slot {
    double v = 0.0;
  };
  std::vector<slot> partials(p.size());
  p.parallel_chunks(n, [&](unsigned w, range r) {
    double acc = 0.0;
    for (index_t i = r.begin; i < r.end; ++i) {
      acc += xs[static_cast<std::size_t>(i)];
    }
    partials[w].v = acc;
  });
  double total = 0.0;
  for (auto& s : partials) {
    total += s.v;
  }
  EXPECT_DOUBLE_EQ(total, std::accumulate(xs.begin(), xs.end(), 0.0));
}

TEST(ThreadPool, DefaultPoolHonorsEnvWidth) {
  // default_pool is a singleton created on first use; we only check it is
  // usable and has at least one worker.
  auto& p = default_pool();
  EXPECT_GE(p.size(), 1u);
  std::atomic<int> n{0};
  p.parallel_for_index(10, [&](index_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedDataParallelWritesDoNotRace) {
  // Disjoint writes per index: the canonical axpy pattern.
  thread_pool p(4);
  const index_t n = 1 << 15;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  p.parallel_for_index(n, [&](index_t i) {
    x[static_cast<std::size_t>(i)] += 2.5 * y[static_cast<std::size_t>(i)];
  });
  for (index_t i = 0; i < n; i += 997) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 6.0);
  }
}

} // namespace
} // namespace jaccx::pool
