// Unit tests for the Base.Threads-style fork/join pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "threadpool/thread_pool.hpp"

namespace jaccx::pool {
namespace {

TEST(ThreadPool, SingleWorkerRunsInline) {
  thread_pool p(1);
  EXPECT_EQ(p.size(), 1u);
  std::vector<int> hits(100, 0);
  p.parallel_for_index(100, [&](index_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  thread_pool p(4);
  const index_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  p.parallel_for_index(n, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  thread_pool p(4);
  bool called = false;
  p.parallel_for_index(0, [&](index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, FewerIndicesThanWorkers) {
  thread_pool p(8);
  std::vector<std::atomic<int>> hits(3);
  p.parallel_for_index(3, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  thread_pool p(4);
  p.set_schedule({schedule_kind::static_chunks, 0}); // chunk count asserted
  std::mutex m;
  std::vector<range> seen;
  p.parallel_chunks(1000, [&](unsigned, range r) {
    std::lock_guard<std::mutex> lock(m);
    seen.push_back(r);
  });
  index_t total = 0;
  for (const auto& r : seen) {
    total += r.size();
  }
  EXPECT_EQ(total, 1000);
  EXPECT_LE(seen.size(), 4u);
}

TEST(ThreadPool, WorkerIdsAreDistinctPerRegion) {
  thread_pool p(4);
  // Static chunking guarantees exactly one chunk per worker; dynamic lets
  // a fast worker claim everything, so pin the schedule.
  p.set_schedule({schedule_kind::static_chunks, 0});
  std::mutex m;
  std::set<unsigned> workers;
  p.parallel_chunks(4000, [&](unsigned w, range) {
    std::lock_guard<std::mutex> lock(m);
    workers.insert(w);
  });
  // Exactly one chunk per worker with static chunking of a large range.
  EXPECT_EQ(workers.size(), 4u);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  thread_pool p(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    p.parallel_for_index(100, [&](index_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50L * (99 * 100 / 2));
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  thread_pool p(4);
  const index_t n = 1 << 16;
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::iota(xs.begin(), xs.end(), 0.0);

  struct alignas(64) slot {
    double v = 0.0;
  };
  std::vector<slot> partials(p.size());
  p.parallel_chunks(n, [&](unsigned w, range r) {
    double acc = partials[w].v; // fold chunks: a worker may get several
    for (index_t i = r.begin; i < r.end; ++i) {
      acc += xs[static_cast<std::size_t>(i)];
    }
    partials[w].v = acc;
  });
  double total = 0.0;
  for (auto& s : partials) {
    total += s.v;
  }
  EXPECT_DOUBLE_EQ(total, std::accumulate(xs.begin(), xs.end(), 0.0));
}

TEST(ThreadPool, DefaultPoolHonorsEnvWidth) {
  // default_pool is a singleton created on first use; we only check it is
  // usable and has at least one worker.
  auto& p = default_pool();
  EXPECT_GE(p.size(), 1u);
  std::atomic<int> n{0};
  p.parallel_for_index(10, [&](index_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, RegionImmediatelyAfterConstruction) {
  // Pins the barrier's generation/sense logic for epoch 0 -> 1: workers
  // that have not yet reached their first wait must still observe the
  // region, whether they find it by spinning or by parking late.
  for (int round = 0; round < 25; ++round) {
    thread_pool p(4);
    std::atomic<int> hits{0};
    p.parallel_for_index(8, [&](index_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 8);
  }
}

TEST(ThreadPool, BackToBackRegionsStress) {
  // 10k rounds of tiny regions around the pool width: n < width runs
  // inline in the caller, n > width exercises the full fork/join barrier
  // with near-empty chunks, back to back with no pause for workers to
  // finish parking — the hardest case for sense/generation bookkeeping.
  thread_pool p(4);
  const auto w = static_cast<index_t>(p.size());
  const index_t sizes[] = {1, w - 1, w + 1, 4 * w};
  std::atomic<long> sum{0};
  long expected = 0;
  for (int round = 0; round < 10000; ++round) {
    for (const index_t n : sizes) {
      p.parallel_for_index(n, [&](index_t i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      });
      expected += n * (n + 1) / 2;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, BackToBackRegionsStressNoSpin) {
  // Same shape with a zero spin budget, so every wait goes straight to the
  // futex park/wake path.
  thread_pool p(3);
  p.set_spin_budget_us(0);
  std::atomic<long> count{0};
  for (int round = 0; round < 2000; ++round) {
    p.parallel_for_index(7, [&](index_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(count.load(), 2000L * 7);
}

TEST(ThreadPool, DynamicScheduleVisitsEveryIndexOnce) {
  thread_pool p(4);
  for (const index_t grain : {index_t{1}, index_t{64}, index_t{100000}}) {
    p.set_schedule({schedule_kind::dynamic_chunks, grain});
    const index_t n = 10007;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    p.parallel_for_index(n, [&](index_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    });
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "grain=" << grain << " i=" << i;
    }
  }
}

TEST(ThreadPool, DynamicChunksPartitionTheRange) {
  thread_pool p(4);
  p.set_schedule({schedule_kind::dynamic_chunks, 128});
  std::mutex m;
  std::vector<range> seen;
  p.parallel_chunks(1000, [&](unsigned, range r) {
    std::lock_guard<std::mutex> lock(m);
    seen.push_back(r);
  });
  std::sort(seen.begin(), seen.end(),
            [](const range& a, const range& b) { return a.begin < b.begin; });
  index_t expect_begin = 0;
  for (const auto& r : seen) {
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_GT(r.size(), 0);
    EXPECT_LE(r.size(), 128);
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, 1000);
}

TEST(ThreadPool, DynamicReductionAccumulatesAcrossChunks) {
  // The parallel_reduce pattern: per-worker padded slots, each chunk
  // folded in.  With grain 1 a worker sees many chunks, so this catches
  // any overwrite-instead-of-accumulate regression.
  thread_pool p(4);
  p.set_schedule({schedule_kind::dynamic_chunks, 1});
  const index_t n = 4096;
  struct alignas(64) slot {
    long v = 0;
  };
  std::vector<slot> partials(p.size());
  p.parallel_chunks(n, [&](unsigned w, range r) {
    long acc = partials[w].v;
    for (index_t i = r.begin; i < r.end; ++i) {
      acc += i;
    }
    partials[w].v = acc;
  });
  long total = 0;
  for (const auto& s : partials) {
    total += s.v;
  }
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ThreadPool, ScheduleRoundTrips) {
  // The construction-time default comes from JACC_SCHEDULE (tests may run
  // under either), so only the explicit setter round-trip is asserted.
  thread_pool p(2);
  const schedule dyn{schedule_kind::dynamic_chunks, 32};
  p.set_schedule(dyn);
  EXPECT_EQ(p.current_schedule(), dyn);
  const schedule st{schedule_kind::static_chunks, 0};
  p.set_schedule(st);
  EXPECT_EQ(p.current_schedule(), st);
}

TEST(ThreadPool, ParseScheduleSpecs) {
  const auto st = parse_schedule("static");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->kind, schedule_kind::static_chunks);
  EXPECT_EQ(st->grain, 0);

  const auto dyn = parse_schedule("dynamic");
  ASSERT_TRUE(dyn.has_value());
  EXPECT_EQ(dyn->kind, schedule_kind::dynamic_chunks);
  EXPECT_EQ(dyn->grain, 0); // auto

  const auto grained = parse_schedule("dynamic,128");
  ASSERT_TRUE(grained.has_value());
  EXPECT_EQ(grained->kind, schedule_kind::dynamic_chunks);
  EXPECT_EQ(grained->grain, 128);

  EXPECT_FALSE(parse_schedule("").has_value());
  EXPECT_FALSE(parse_schedule("guided").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,0").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,-4").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,12x").has_value());
  EXPECT_FALSE(parse_schedule("static,5").has_value());
}

TEST(ThreadPool, NestedDataParallelWritesDoNotRace) {
  // Disjoint writes per index: the canonical axpy pattern.
  thread_pool p(4);
  const index_t n = 1 << 15;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  p.parallel_for_index(n, [&](index_t i) {
    x[static_cast<std::size_t>(i)] += 2.5 * y[static_cast<std::size_t>(i)];
  });
  for (index_t i = 0; i < n; i += 997) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], 6.0);
  }
}

} // namespace
} // namespace jaccx::pool
