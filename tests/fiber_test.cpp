// Unit tests for the stackful fiber substrate (the SIMT barrier machinery).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fiber/fiber.hpp"

namespace jaccx::fiber {
namespace {

struct counter_ctx {
  fiber* self = nullptr;
  int yields = 0;
  std::vector<int>* log = nullptr;
  int id = 0;
};

void run_with_yields(void* p) {
  auto* c = static_cast<counter_ctx*>(p);
  for (int k = 0; k < c->yields; ++k) {
    if (c->log != nullptr) {
      c->log->push_back(c->id * 100 + k);
    }
    c->self->yield();
  }
  if (c->log != nullptr) {
    c->log->push_back(c->id * 100 + 99);
  }
}

TEST(Fiber, RunsToCompletionWithoutYield) {
  fiber f;
  counter_ctx c{&f, 0, nullptr, 0};
  f.reset(&run_with_yields, &c);
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  fiber f;
  std::vector<int> log;
  counter_ctx c{&f, 3, &log, 1};
  f.reset(&run_with_yields, &c);
  f.resume(); // runs until first yield
  EXPECT_FALSE(f.done());
  EXPECT_EQ(log, (std::vector<int>{100}));
  f.resume();
  f.resume();
  EXPECT_FALSE(f.done());
  f.resume(); // final leg
  EXPECT_TRUE(f.done());
  EXPECT_EQ(log, (std::vector<int>{100, 101, 102, 199}));
}

TEST(Fiber, ReusableAfterCompletion) {
  fiber f;
  for (int round = 0; round < 10; ++round) {
    counter_ctx c{&f, 2, nullptr, round};
    f.reset(&run_with_yields, &c);
    int resumes = 0;
    while (!f.done()) {
      f.resume();
      ++resumes;
    }
    EXPECT_EQ(resumes, 3); // 2 yields + final leg
  }
}

TEST(Fiber, InterleavedRoundRobinOrder) {
  // Three fibers yielding twice each, resumed round-robin: the log must show
  // phase-major order — exactly the barrier semantics the SIMT executor
  // relies on.
  std::vector<int> log;
  std::vector<std::unique_ptr<fiber>> fs;
  std::vector<counter_ctx> ctxs(3);
  for (int i = 0; i < 3; ++i) {
    fs.push_back(std::make_unique<fiber>());
    ctxs[static_cast<std::size_t>(i)] =
        counter_ctx{fs.back().get(), 2, &log, i};
    fs.back()->reset(&run_with_yields, &ctxs[static_cast<std::size_t>(i)]);
  }
  std::size_t remaining = fs.size();
  while (remaining > 0) {
    for (auto& f : fs) {
      if (!f->done()) {
        f->resume();
        if (f->done()) {
          --remaining;
        }
      }
    }
  }
  EXPECT_EQ(log, (std::vector<int>{0, 100, 200,       // phase 0
                                   1, 101, 201,       // phase 1
                                   99, 199, 299}));   // final legs
}

void deep_locals(void* p) {
  auto* c = static_cast<counter_ctx*>(p);
  // Touch a fair amount of stack below the entry frame.
  volatile char scratch[8192];
  for (std::size_t i = 0; i < sizeof(scratch); i += 512) {
    scratch[i] = static_cast<char>(i);
  }
  c->self->yield();
  // Values written before the yield must survive the suspension.
  for (std::size_t i = 0; i < sizeof(scratch); i += 512) {
    EXPECT_EQ(scratch[i], static_cast<char>(i));
  }
}

TEST(Fiber, StackSurvivesSuspension) {
  fiber f;
  counter_ctx c{&f, 0, nullptr, 0};
  f.reset(&deep_locals, &c);
  f.resume();
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
}

TEST(Fiber, ManyFibersShareOneScheduler) {
  constexpr int n = 256;
  std::vector<std::unique_ptr<fiber>> fs;
  std::vector<counter_ctx> ctxs(n);
  std::vector<int> log;
  for (int i = 0; i < n; ++i) {
    fs.push_back(std::make_unique<fiber>(16 * 1024));
    ctxs[static_cast<std::size_t>(i)] = counter_ctx{fs.back().get(), 1,
                                                    nullptr, i};
    fs.back()->reset(&run_with_yields, &ctxs[static_cast<std::size_t>(i)]);
  }
  std::size_t remaining = fs.size();
  int passes = 0;
  while (remaining > 0) {
    ++passes;
    for (auto& f : fs) {
      if (!f->done()) {
        f->resume();
        if (f->done()) {
          --remaining;
        }
      }
    }
  }
  EXPECT_EQ(passes, 2); // one yield each -> exactly two passes
}

} // namespace
} // namespace jaccx::fiber
