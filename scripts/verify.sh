#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the fork/join pool.
#
#   scripts/verify.sh          full build + ctest + TSan pool/parallel_for run
#   scripts/verify.sh --tsan   TSan pass only
#
# The TSan pass uses a separate build tree (build-tsan) configured with
# -DJACCX_SANITIZE=thread so barrier/scheduling races are caught at PR time
# without slowing the main build.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
RUN_FULL=1
if [[ "${1:-}" == "--tsan" ]]; then
  RUN_FULL=0
fi

if [[ $RUN_FULL -eq 1 ]]; then
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS"
  # Both mem-pool modes are supported configurations; `none` must keep the
  # seed's exact allocation behavior.
  JACC_MEM_POOL=none ctest --test-dir build --output-on-failure -j"$JOBS"
  # Forcing a single async lane degrades every queued submission to the
  # synchronous path; the whole suite must be equivalent under it (ISSUE 4
  # acceptance: default-queue == sync semantics).
  JACC_QUEUES=1 ctest --test-dir build --output-on-failure -j"$JOBS"
  # The async layer (futures, queue-routed collectives, pipelined CG, graph
  # capture/replay) with two forced lanes and the pool disabled: staging and
  # future slots must degrade to plain allocation without changing any
  # result.
  JACC_QUEUES=2 JACC_MEM_POOL=none ctest --test-dir build \
    -R 'DistAsync|QueueTest|GraphTest|CgPipelined|CgGraphed|PipelinedSolve|GraphedSolve' \
    --output-on-failure -j"$JOBS"
  # Kernel fusion (docs/FUSION.md): the whole suite must pass with both
  # fusion levels forced on, and with fusion forced off — `none` must keep
  # the seed's launch sequence and simulated charges bit for bit (the
  # Fusion.NoneModeMatchesSeedChargesExactly test pins the charges; these
  # legs prove nothing else quietly depends on the mode).
  JACC_FUSE=all ctest --test-dir build --output-on-failure -j"$JOBS"
  JACC_FUSE=none ctest --test-dir build --output-on-failure -j"$JOBS"
  # Auto-sharding (docs/SHARDING.md): the whole suite must pass with
  # sharding explicitly forced on — the default resolution, so this proves
  # no test quietly depends on JACC_SHARD being unset.  The shard suite
  # itself pins bit-exactness against the deprecated hand-sharded front
  # end and covers the off mode via the test hook.
  JACC_SHARD=auto ctest --test-dir build --output-on-failure -j"$JOBS"

  # Serving scheduler (docs/SERVING.md): the suite must pass with explicit
  # serve env overrides in place, proving the resolution order (options >
  # env > auto) and that no other test depends on the serve env being
  # unset.
  JACC_SERVE_SLOTS=2 ctest --test-dir build -R 'ServeTest' \
    --output-on-failure -j"$JOBS"

  # Serving acceptance: sim throughput must scale to slot saturation,
  # 8 equal-weight tenants must stay within the 1.5x p99 queue-wait ratio,
  # and the memory-pressure scenario must defer-then-admit with the pool's
  # trim-and-retry actually firing; the binary exits nonzero on a miss.
  rm -f BENCH_serving.json
  JACC_NUM_THREADS=4 ./build/bench/abl_serving --benchmark_filter=NONE \
    > /dev/null
  grep -q '"serving"' BENCH_serving.json
  rm -f BENCH_serving.json

  # Auto-shard acceptance: auto-sharded CG chain and LBM-like stencil must
  # hit the strong-scaling bars (>=1.7x on 2 devices, >=3x on 4) and the
  # measured rebalancer must recover >=80% of the ideal plan's win with
  # one device slowed 2x; the binary exits nonzero on a miss.
  rm -f BENCH_auto_shard.json
  ./build/bench/abl_auto_shard --benchmark_filter=NONE > /dev/null 2>&1
  test -s BENCH_auto_shard.json
  rm -f BENCH_auto_shard.json

  # Fusion ablation acceptance: the fused CG BLAS chain must charge >=1.5x
  # less simulated DRAM traffic than the eager chain (the binary exits
  # nonzero when the bar is missed) and emit roofline rows for the fused
  # kernels into its JSON artifact.
  rm -f BENCH_cg_fusion.json
  JACC_NUM_THREADS=4 ./build/bench/abl_cg_fusion > /dev/null
  grep -q '"roofline"' BENCH_cg_fusion.json
  rm -f BENCH_cg_fusion.json

  # Roofline smoke: the fig13 CG bench under JACC_PROFILE=roofline must
  # print per-kernel roof placements for the host backends and at least two
  # sim models, and mirror the same rows into BENCH_fig13_cg.json.  Output
  # goes to a file (not a pipe) so the bench never sees a closed stdout.
  rm -f roofline_smoke.out BENCH_fig13_cg.json
  JACC_NUM_THREADS=4 JACC_PROFILE=roofline ./build/bench/fig13_cg \
    --benchmark_filter='fig13/cg/(serial_wallclock/jacc/16384|threads_wallclock/jacc/16384|a100/jacc/16384|mi100/jacc/16384)' \
    > roofline_smoke.out 2>&1
  grep -q 'jaccx::prof roofline' roofline_smoke.out
  for target in serial threads a100 mi100; do
    grep -Eq "^${target} " roofline_smoke.out
  done
  grep -q '"roofline"' BENCH_fig13_cg.json
  rm -f roofline_smoke.out BENCH_fig13_cg.json

  # dlopen-tool smoke: a KokkosP-analogue tool named via JACC_TOOLS_LIBS
  # must receive callbacks from an unmodified binary and print its finalize
  # summary at exit.  Output to a file (grep -q on a pipe would SIGPIPE the
  # binary under pipefail).
  JACC_TOOLS_LIBS=./build/tests/tools/libjaccp_test_tool.so \
    ./build/examples/quickstart > tool_smoke.out 2>&1
  grep -q 'jaccp_test_tool:' tool_smoke.out
  rm -f tool_smoke.out

  # Trace-file %p substitution: one process, one PID-stamped trace file.
  rm -f trace_verify_*.json
  JACC_PROFILE=trace JACC_TRACE_FILE=trace_verify_%p.json \
    ./build/examples/quickstart > /dev/null
  ls trace_verify_*.json > /dev/null
  rm -f trace_verify_*.json
fi

cmake -B build-tsan -S . -DJACCX_SANITIZE=thread \
  -DJACC_BUILD_BENCH=OFF -DJACC_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j"$JOBS" --target tests_substrate tests_core \
  tests_apps

# Exercise the barrier with more workers than this machine may have cores,
# and under both schedules, so spin/park and cursor paths all run.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
JACC_NUM_THREADS=4 ./build-tsan/tests/tests_substrate --gtest_filter='ThreadPool.*'
JACC_NUM_THREADS=4 ./build-tsan/tests/tests_core \
  --gtest_filter='*ParallelFor*:*ThreadsDecomposition*:Prof.*'
JACC_NUM_THREADS=4 JACC_SCHEDULE=dynamic,16 ./build-tsan/tests/tests_substrate \
  --gtest_filter='ThreadPool.*'
JACC_NUM_THREADS=4 JACC_SCHEDULE=dynamic,16 JACC_SPIN_US=0 \
  ./build-tsan/tests/tests_core --gtest_filter='*ParallelFor*:Prof.*'

# Profiler collection concurrent with the pool's instrumented fast paths:
# rings, pool counters, and the sim-event tee all race-checked under load.
JACC_NUM_THREADS=4 JACC_PROFILE=collect ./build-tsan/tests/tests_core \
  --gtest_filter='Prof.*:*ParallelFor*'

# The mem pool's mutex-guarded free lists and the pooled reduction paths
# (device workspace reuse + host scratch lease) under concurrent load, in
# both modes. Mem.ConcurrentAcquireReleaseIsRaceFree is the dedicated
# stress; the ReduceAgreement filters drive the pooled host scratch from
# the worker pool. WorkspaceGrowthZeroesTail and the large sim-GPU sweeps
# stay out: block-sized SIMT fibers (raw context switches, 64 KiB stacks)
# are not TSan-instrumentable, a pre-existing simulator limitation that
# the non-TSan ctest runs cover.
JACC_NUM_THREADS=4 ./build-tsan/tests/tests_core \
  --gtest_filter='Mem.*:*ReduceAgreement*serial*:*ReduceAgreement*threads*:-Mem.WorkspaceGrowthZeroesTail'
JACC_NUM_THREADS=4 JACC_MEM_POOL=none ./build-tsan/tests/tests_core \
  --gtest_filter='Mem.*:*ReduceAgreement*serial*:*ReduceAgreement*threads*:-Mem.WorkspaceGrowthZeroesTail'

# Queue front end under real async lanes: JACC_QUEUES=2 forces two dispatcher
# threads regardless of core count, so submission, completion signalling,
# events, futures (including the destruction races: future outliving its
# queue, a dropped handle with in-flight work, synchronize concurrent with
# queue creation), and the two-host-thread stress all run with genuine
# concurrency under TSan.  The two sim-reduction tests stay out for the
# same fiber reason as the sim-GPU sweeps above.
QUEUE_TSAN_FILTER='QueueTest.*:-QueueTest.FutureGetBitExactWithSyncReduceOnSim:QueueTest.WaitOnFutureOrdersCrossQueueSimWork'
JACC_NUM_THREADS=4 JACC_QUEUES=2 ./build-tsan/tests/tests_core \
  --gtest_filter="$QUEUE_TSAN_FILTER"
JACC_NUM_THREADS=4 JACC_QUEUES=2 JACC_MEM_POOL=none \
  ./build-tsan/tests/tests_core --gtest_filter="$QUEUE_TSAN_FILTER"

# Graph capture/replay under the same two forced lanes: the capture installs
# (atomic hot-path check), replay chains across lanes, graph-outlives-queue,
# and the replay-concurrent-with-capture stress.  The sim-reduction charge
# test stays out for the fiber reason above.
GRAPH_TSAN_FILTER='GraphTest.*:-GraphTest.SimReplayChargesMatchEager'
JACC_NUM_THREADS=4 JACC_QUEUES=2 ./build-tsan/tests/tests_core \
  --gtest_filter="$GRAPH_TSAN_FILTER"
JACC_NUM_THREADS=4 JACC_QUEUES=2 JACC_MEM_POOL=none \
  ./build-tsan/tests/tests_core --gtest_filter="$GRAPH_TSAN_FILTER"

# Kernel fusion under forced lanes with both levels on: fused expr sweeps
# and fused replay nodes run member bodies back-to-back on the worker pool,
# which is the new race surface this PR adds.  The sim-charge tests stay
# out for the SIMT-fiber reason above.
FUSION_TSAN_FILTER='Fusion.*:-Fusion.ExprSimChargesLessDram:Fusion.NoneModeMatchesSeedChargesExactly:Fusion.CgSolveExprBitExactSerialAndSim'
JACC_NUM_THREADS=4 JACC_QUEUES=2 JACC_FUSE=all ./build-tsan/tests/tests_core \
  --gtest_filter="$FUSION_TSAN_FILTER"

# Serving scheduler (docs/SERVING.md): worker dispatch, job-handle
# signalling, WFQ bookkeeping, the admission/pressure callback, and the
# scratch-lease free list all race with the lanes under JACC_QUEUES=2.
# The sim-stream test stays out for the SIMT-fiber reason above; the
# lane-reinit test re-execs initialize() and is covered by the non-TSan
# ctest runs.
SERVE_TSAN_FILTER='ServeTest.*:-ServeTest.SimTenantsLandOnPerTenantSlotStreams:ServeTest.LaneReresolutionAcrossInitializeMidServing'
JACC_NUM_THREADS=4 JACC_QUEUES=2 ./build-tsan/tests/tests_apps \
  --gtest_filter="$SERVE_TSAN_FILTER"

# Auto-shard engine (docs/SHARDING.md): plan staging, packed halo exchange,
# re-sharding, and the per-device sim::launch paths are all instrumented.
# The fiber-based sim reductions are not TSan-instrumentable (same SIMT
# limitation as above), so the reduce-driven shard tests stay out.
SHARD_TSAN_FILTER='ShardPlan.*:ShardExec.*:ShardHalo.*:ShardRebalance.*:ShardPool.*:ShardErrors.*:*ShardVsMulti.AxpyBitExact*:-ShardPlan.OffModePinsEverythingToDeviceZero:ShardHalo.StencilReductionReadsGhosts'
JACC_NUM_THREADS=4 ./build-tsan/tests/tests_apps \
  --gtest_filter="$SHARD_TSAN_FILTER"

echo "verify: OK"
