// Backend tour: the paper's portability claim made concrete — one kernel
// source, executed on all six back ends in one process, with identical
// results and a per-device account of where the simulated time went.
//
//   ./backend_tour [n=1000000]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "core/jacc.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using jacc::index_t;
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 1'000'000;

  std::vector<double> xs(static_cast<std::size_t>(n), 1.0);
  std::vector<double> ys(static_cast<std::size_t>(n), 2.0);

  std::printf("%-16s %14s %14s %14s  %s\n", "backend", "dot result",
              "wall ms", "device us", "notes");
  for (jacc::backend b : jacc::all_backends) {
    jacc::scoped_backend sb(b);
    if (auto* dev = jacc::backend_device(b)) {
      dev->reset_clock();
      dev->cache().reset();
    }
    jaccx::stopwatch sw;
    jacc::array<double> x(xs), y(ys);
    jaccx::blas::jacc_axpy(n, 2.5, x, y);
    const double dot = jaccx::blas::jacc_dot(n, x, y);
    const double wall_ms = sw.elapsed_ms();

    std::string notes;
    double device_us = 0.0;
    if (auto* dev = jacc::backend_device(b)) {
      device_us = dev->tl().now_us();
      // Break the account down by event kind.
      double kern = 0.0;
      double xfer = 0.0;
      for (const auto& e : dev->tl().events()) {
        if (e.kind == jaccx::sim::event_kind::kernel) {
          kern += e.duration_us;
        } else if (e.kind != jaccx::sim::event_kind::alloc) {
          xfer += e.duration_us;
        }
      }
      char buf[96];
      std::snprintf(buf, sizeof(buf), "kernels %.0fus, transfers %.0fus",
                    kern, xfer);
      notes = buf;
    } else {
      notes = "real execution (host wall clock is the measurement)";
    }
    std::printf("%-16s %14.1f %14.2f %14.1f  %s\n",
                std::string(jacc::to_string(b)).c_str(), dot, wall_ms,
                device_us, notes.c_str());
  }
  std::puts("\nSame source, same results; only the configured backend "
            "changed (paper Sec. III).");
  return 0;
}
