// HARVEY-style lattice-Boltzmann demo (paper Sec. V-B): an acoustic
// pressure pulse expanding in a closed box, computed with the Fig. 10 D2Q9
// pull kernel through one JACC multidimensional parallel_for per step.
//
//   ./lbm_pulse [size=96] [steps=60]
//   JACC_BACKEND=cuda ./lbm_pulse 256 100
//
// Prints mass conservation and a coarse ASCII rendering of the density
// field as the wave propagates, and (on a simulated backend) a device-time
// account plus a Chrome trace.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "lbm/simulation.hpp"

int main(int argc, char** argv) {
  using jacc::index_t;
  jacc::initialize();

  const index_t size = argc > 1 ? std::atoll(argv[1]) : 96;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 60;
  if (size < 8 || steps < 1) {
    std::fprintf(stderr, "usage: %s [size>=8] [steps>=1]\n", argv[0]);
    return 1;
  }

  std::printf("LBM D2Q9 pull, %lldx%lld lattice, %d steps, backend %s\n",
              static_cast<long long>(size), static_cast<long long>(size),
              steps, std::string(jacc::to_string(jacc::current_backend()))
                         .c_str());

  jaccx::lbm::simulation sim(
      jaccx::lbm::params{.size = size, .tau = 0.8});
  sim.init_pulse(1.0, 0.25, 0.07);
  const double mass0 = sim.total_mass();

  const auto render = [&](int step) {
    const auto m = sim.macroscopics();
    std::printf("--- step %d: density field (x = sampled rows) ---\n", step);
    const index_t stride = size / 24 > 0 ? size / 24 : 1;
    for (index_t x = 0; x < size; x += stride) {
      std::string line;
      for (index_t y = 0; y < size; y += stride) {
        const double d =
            m.density[static_cast<std::size_t>(x * size + y)] - 1.0;
        const char* shades = " .:-=+*#%@";
        int level = static_cast<int>(d * 40.0);
        level = level < 0 ? 0 : (level > 9 ? 9 : level);
        line.push_back(shades[level]);
      }
      std::puts(line.c_str());
    }
  };

  render(0);
  const int checkpoints = 3;
  for (int c = 1; c <= checkpoints; ++c) {
    sim.run(steps / checkpoints);
    render(sim.steps_taken());
  }

  const double mass1 = sim.total_mass();
  std::printf("mass: %.6f -> %.6f (drift %.2e relative)\n", mass0, mass1,
              (mass1 - mass0) / mass0);

  if (auto* dev = jacc::backend_device(jacc::current_backend())) {
    std::printf("simulated %s time: %.1f us over %zu events\n",
                dev->model().name.c_str(), dev->tl().now_us(),
                dev->tl().event_count());
    std::ofstream trace("lbm_pulse_trace.json");
    trace << dev->tl().to_chrome_trace();
    std::puts("wrote lbm_pulse_trace.json (chrome://tracing / Perfetto)");
  }
  return 0;
}
