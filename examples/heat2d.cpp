// 2D heat diffusion: a fourth application pattern on the JACC front end,
// combining a multidimensional parallel_for (Jacobi sweep) with a max
// parallel_reduce (convergence check) — the residual pattern the paper's
// Sec. III constructs are designed for.
//
//   ./heat2d [edge=128] [max_sweeps=2000]
//
// Fixed boundary: left edge held at 1, other edges at 0; interior relaxes
// to the steady harmonic solution.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/jacc.hpp"

namespace {

using jacc::index_t;

void jacobi_sweep(index_t i, index_t j, const jacc::array2d<double>& u,
                  jacc::array2d<double>& next, index_t edge) {
  if (i == 0 || j == 0 || i == edge - 1 || j == edge - 1) {
    next(i, j) = static_cast<double>(u(i, j)); // boundary carried over
    return;
  }
  next(i, j) = 0.25 * (static_cast<double>(u(i - 1, j)) +
                       static_cast<double>(u(i + 1, j)) +
                       static_cast<double>(u(i, j - 1)) +
                       static_cast<double>(u(i, j + 1)));
}

double abs_change(index_t i, index_t j, const jacc::array2d<double>& a,
                  const jacc::array2d<double>& b) {
  const double d = static_cast<double>(a(i, j)) - static_cast<double>(b(i, j));
  return d < 0 ? -d : d;
}

} // namespace

int main(int argc, char** argv) {
  jacc::initialize();
  const index_t edge = argc > 1 ? std::atoll(argv[1]) : 128;
  const int max_sweeps = argc > 2 ? std::atoi(argv[2]) : 2000;

  std::vector<double> init(static_cast<std::size_t>(edge * edge), 0.0);
  for (index_t j = 0; j < edge; ++j) {
    init[static_cast<std::size_t>(0 + j * edge)] = 1.0; // hot left column
  }
  jacc::array2d<double> u(init, edge, edge);
  jacc::array2d<double> next(init, edge, edge);

  int sweeps = 0;
  double change = 1.0;
  while (sweeps < max_sweeps && change > 1e-6) {
    jacc::parallel_for(jacc::dims2{edge, edge}, jacobi_sweep, u, next, edge);
    change = jacc::parallel_reduce_max(
        edge * edge,
        [edge](index_t lin, const jacc::array2d<double>& a,
               const jacc::array2d<double>& b) {
          return abs_change(lin % edge, lin / edge, a, b);
        },
        u, next);
    std::swap(u, next);
    ++sweeps;
  }

  // Mean temperature should sit strictly between boundary values.
  const double mean =
      jacc::parallel_reduce(
          jacc::dims2{edge, edge},
          [](index_t i, index_t j, const jacc::array2d<double>& a) {
            return static_cast<double>(a(i, j));
          },
          u) /
      static_cast<double>(edge * edge);

  std::printf("heat2d %lldx%lld on %s: %d sweeps, last max change %.2e, "
              "mean temperature %.4f\n",
              static_cast<long long>(edge), static_cast<long long>(edge),
              std::string(jacc::to_string(jacc::current_backend())).c_str(),
              sweeps, change, mean);
  return mean > 0.0 && mean < 1.0 ? 0 : 1;
}
