// Quickstart: the paper's Fig. 2 front-end example, line for line.
//
//   ./quickstart             runs on the configured backend (threads default)
//   JACC_BACKEND=cuda ./quickstart      runs on the simulated A100
//   or put  [JACC] backend = "amdgpu"  in ./LocalPreferences.toml
//
// Kernels are free functions defined separately and in advance of the
// parallel_for / parallel_reduce call, exactly as JACC prescribes.
#include <cstdio>
#include <vector>

#include "core/jacc.hpp"

namespace {

using jacc::index_t;

// function axpy(i, alpha, x, y); x[i] += alpha * y[i]; end
void axpy(index_t i, double alpha, jacc::array<double>& x,
          const jacc::array<double>& y) {
  x[i] += alpha * static_cast<double>(y[i]);
}

// function dot(i, x, y); return x[i] * y[i]; end
double dot(index_t i, const jacc::array<double>& x,
           const jacc::array<double>& y) {
  return static_cast<double>(x[i]) * static_cast<double>(y[i]);
}

// Multidimensional variants (Fig. 2, second half).
void axpy2d(index_t i, index_t j, double alpha, jacc::array2d<double>& x,
            const jacc::array2d<double>& y) {
  x(i, j) += alpha * static_cast<double>(y(i, j));
}

double dot2d(index_t i, index_t j, const jacc::array2d<double>& x,
             const jacc::array2d<double>& y) {
  return static_cast<double>(x(i, j)) * static_cast<double>(y(i, j));
}

} // namespace

int main() {
  jacc::initialize();
  std::printf("JACC backend: %s\n",
              std::string(jacc::to_string(jacc::current_backend())).c_str());

  // --- 1D (SIZE = 1_000_000 in the paper; smaller here so the simulated
  // back ends stay snappy) --------------------------------------------------
  const index_t size = 100'000;
  std::vector<double> x(static_cast<std::size_t>(size), 1.0);
  std::vector<double> y(static_cast<std::size_t>(size), 2.0);
  const double alpha = 2.5;

  jacc::array<double> dx(x); // dx = JACC.Array(x)
  jacc::array<double> dy(y);
  jacc::parallel_for(size, axpy, alpha, dx, dy);
  const double res = jacc::parallel_reduce(size, dot, dx, dy);
  std::printf("1D: axpy+dot over %lld elements -> %.1f (expect %.1f)\n",
              static_cast<long long>(size), res,
              (1.0 + alpha * 2.0) * 2.0 * static_cast<double>(size));

  // --- 2D -------------------------------------------------------------------
  const index_t edge = 300;
  std::vector<double> m(static_cast<std::size_t>(edge * edge), 1.0);
  jacc::array2d<double> mx(m, edge, edge), my(m, edge, edge);
  jacc::parallel_for(jacc::dims2{edge, edge}, axpy2d, alpha, mx, my);
  const double res2 = jacc::parallel_reduce(jacc::dims2{edge, edge}, dot2d,
                                            mx, my);
  std::printf("2D: axpy+dot over %lldx%lld -> %.1f (expect %.1f)\n",
              static_cast<long long>(edge), static_cast<long long>(edge),
              res2, (1.0 + alpha) * static_cast<double>(edge * edge));

  // On a simulated backend, show what the run cost on the modeled device.
  if (auto* dev = jacc::backend_device(jacc::current_backend())) {
    std::printf("simulated device %s: %.1f us across %zu charged events\n",
                dev->model().name.c_str(), dev->tl().now_us(),
                dev->tl().event_count());
  }
  return 0;
}
