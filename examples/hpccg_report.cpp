// HPCCG-style benchmark report (the supercomputing benchmark the paper's
// CG study stands in for): generates the 27-point problem, runs CG to
// convergence through the JACC front end, and prints the classic breakdown
// — time and MFLOP/s for DDOT / WAXPBY / SPARSEMV — using the simulated
// device timeline (or wall clock on real back ends).
//
//   ./hpccg_report [nx=32] [ny=32] [nz=32]
//   JACC_BACKEND=cuda ./hpccg_report 48 48 48
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "cg/solver.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using jacc::index_t;
  jacc::initialize();
  const index_t nx = argc > 1 ? std::atoll(argv[1]) : 32;
  const index_t ny = argc > 2 ? std::atoll(argv[2]) : 32;
  const index_t nz = argc > 3 ? std::atoll(argv[3]) : 32;

  const auto host = jaccx::cg::make_hpccg_27pt(nx, ny, nz);
  jaccx::cg::csr_system A(host);
  jaccx::cg::darray b(host.rhs_for_ones());
  jaccx::cg::darray x(A.rows);

  auto* dev = jacc::backend_device(jacc::current_backend());
  if (dev != nullptr) {
    dev->reset_clock();
    dev->cache().reset();
  }

  jaccx::stopwatch wall;
  const auto res =
      jaccx::cg::cg_solve(A, b, x, {.max_iterations = 500,
                                    .tolerance = 1e-10});
  const double wall_ms = wall.elapsed_ms();

  std::printf("HPCCG-style report (backend %s)\n",
              std::string(jacc::to_string(jacc::current_backend())).c_str());
  std::printf("  dimensions         : %lld x %lld x %lld (%lld rows, %lld "
              "nonzeros)\n",
              static_cast<long long>(nx), static_cast<long long>(ny),
              static_cast<long long>(nz), static_cast<long long>(A.rows),
              static_cast<long long>(host.nnz()));
  std::printf("  iterations         : %d (%s)\n", res.iterations,
              res.converged ? "converged" : "NOT converged");
  std::printf("  final rel residual : %.3e\n", res.relative_residual);
  std::printf("  wall time          : %.2f ms (host, includes simulation "
              "overhead)\n",
              wall_ms);

  // Flop accounting per iteration, HPCCG-style.
  const double n = static_cast<double>(A.rows);
  const double ddot_flops = 2.0 * n * 2.0;    // two dots per iteration
  const double waxpby_flops = 2.0 * n * 3.0;  // two axpys + one xpay
  const double spmv_flops = 2.0 * static_cast<double>(host.nnz());
  const double iters = res.iterations;

  if (dev != nullptr) {
    // Aggregate simulated time by kernel-name family.
    std::map<std::string, double> by_family;
    for (const auto& e : dev->tl().events()) {
      std::string family = e.name;
      if (family.find("dot") != std::string::npos ||
          family.find("zeros") != std::string::npos ||
          family.find("reduce") != std::string::npos) {
        family = "DDOT";
      } else if (family.find("axpy") != std::string::npos ||
                 family.find("xpay") != std::string::npos ||
                 family.find("copy") != std::string::npos ||
                 family.find("residual") != std::string::npos) {
        family = "WAXPBY";
      } else if (family.find("spmv") != std::string::npos) {
        family = "SPARSEMV";
      } else {
        family = "other";
      }
      by_family[family] += e.duration_us;
    }
    const double total = dev->tl().now_us();
    std::printf("  device time        : %.1f us simulated on %s\n", total,
                dev->model().name.c_str());
    const auto line = [&](const char* name, double flops_per_iter) {
      const double us = by_family.count(name) != 0u ? by_family[name] : 0.0;
      const double mflops =
          us > 0.0 ? iters * flops_per_iter / us : 0.0; // flops/us == MFLOP/s
      std::printf("  %-9s: %10.1f us (%4.1f%%)  %10.0f MFLOP/s\n", name, us,
                  100.0 * us / total, mflops);
    };
    line("DDOT", ddot_flops);
    line("WAXPBY", waxpby_flops);
    line("SPARSEMV", spmv_flops);
    if (by_family.count("other") != 0u) {
      std::printf("  %-9s: %10.1f us (%4.1f%%)\n", "other",
                  by_family["other"], 100.0 * by_family["other"] / total);
    }
  } else {
    const double total_flops =
        iters * (ddot_flops + waxpby_flops + spmv_flops);
    std::printf("  aggregate          : %.0f MFLOP/s (wall clock)\n",
                total_flops / (wall_ms * 1000.0));
  }
  return res.converged ? 0 : 1;
}
