// Multi-device demo (paper Sec. VII future work): the same AXPY/DOT and a
// halo-exchanged 3-point smoother sharded across 1..8 simulated GPUs,
// reporting strong-scaling wall times from the overlapping device clocks.
//
//   ./multi_gpu [n=4194304] [backend: cuda|amdgpu|oneapi]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "multi/multi.hpp"

int main(int argc, char** argv) {
  using jaccx::multi::context;
  using jaccx::multi::marray;
  using jacc::index_t;

  const index_t n = argc > 1 ? std::atoll(argv[1]) : 4'194'304;
  const jacc::backend be =
      argc > 2 ? jacc::backend_from_string(argv[2]) : jacc::backend::cuda_a100;

  std::printf("multi-device strong scaling, n=%lld, target %s\n",
              static_cast<long long>(n),
              std::string(jacc::to_string(be)).c_str());
  std::printf("%8s %14s %14s %14s %10s\n", "devices", "axpy us", "dot us",
              "smoother us", "speedup");

  double base_total = 0.0;
  for (int ndev : {1, 2, 4, 8}) {
    context ctx(be, ndev);
    ctx.reset_clocks();
    marray<double> x(ctx, std::vector<double>(static_cast<std::size_t>(n),
                                              1.0));
    marray<double> y(ctx, std::vector<double>(static_cast<std::size_t>(n),
                                              2.0));
    marray<double> u(ctx, std::vector<double>(static_cast<std::size_t>(n),
                                              0.5),
                     /*ghost=*/1);
    marray<double> next(ctx, std::vector<double>(static_cast<std::size_t>(n),
                                                 0.5),
                        /*ghost=*/1);
    ctx.reset_clocks(); // exclude the scatter

    jaccx::multi::parallel_for(
        ctx, n,
        [](index_t i, jaccx::sim::device_span<double> xs,
           jaccx::sim::device_span<double> ys) {
          xs[i] += 2.5 * static_cast<double>(ys[i]);
        },
        x, y);
    const double t_axpy = ctx.sync();

    const double dot = jaccx::multi::parallel_reduce(
        ctx, n,
        [](index_t i, jaccx::sim::device_span<double> xs,
           jaccx::sim::device_span<double> ys) {
          return static_cast<double>(xs[i]) * static_cast<double>(ys[i]);
        },
        x, y);
    const double t_dot = ctx.sync() - t_axpy;

    u.exchange_halos();
    jaccx::multi::parallel_for(
        ctx, n,
        [n](index_t i, jaccx::sim::device_span<double> us,
            jaccx::sim::device_span<double> ns, index_t base) {
          const index_t g = base + i;
          if (g == 0 || g == n - 1) {
            ns[i + 1] = static_cast<double>(us[i + 1]);
          } else {
            ns[i + 1] = (static_cast<double>(us[i]) +
                         static_cast<double>(us[i + 1]) +
                         static_cast<double>(us[i + 2])) /
                        3.0;
          }
        },
        u, next, jaccx::multi::with_base);
    const double t_total = ctx.sync();
    const double t_smooth = t_total - t_axpy - t_dot;

    if (ndev == 1) {
      base_total = t_total;
    }
    std::printf("%8d %14.1f %14.1f %14.1f %9.2fx   (dot=%.0f)\n", ndev,
                t_axpy, t_dot, t_smooth, base_total / t_total, dot);
  }
  return 0;
}
