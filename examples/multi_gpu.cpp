// Multi-device demo (paper Sec. VII future work): the same AXPY/DOT and a
// halo-exchanged 3-point smoother run across 1..8 simulated GPUs — through
// the auto-sharding layer (docs/SHARDING.md).  Unlike the deprecated
// jaccx::multi front end this used to showcase, the kernels here are the
// ordinary single-device ones: global indices, plain jacc::array
// arguments.  Opening a device_set_scope is the only multi-device code;
// the runtime decomposes each launch, exchanges the smoother's halos
// (inferred from hints::stencil), and overlaps the device clocks.
//
//   ./multi_gpu [n=4194304] [backend: cuda|amdgpu|oneapi]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/jacc.hpp"

int main(int argc, char** argv) {
  using jacc::index_t;

  const index_t n = argc > 1 ? std::atoll(argv[1]) : 4'194'304;
  const jacc::backend be =
      argc > 2 ? jacc::backend_from_string(argv[2]) : jacc::backend::cuda_a100;

  std::printf("auto-sharded strong scaling, n=%lld, target %s\n",
              static_cast<long long>(n),
              std::string(jacc::to_string(be)).c_str());
  std::printf("%8s %14s %14s %14s %10s\n", "devices", "axpy us", "dot us",
              "smoother us", "speedup");

  double base_total = 0.0;
  for (int ndev : {1, 2, 4, 8}) {
    jacc::device_set ds(be, ndev);
    ds.reset_clocks();
    jacc::array<double> x(jacc::sharded(ds),
                          std::vector<double>(static_cast<std::size_t>(n),
                                              1.0));
    jacc::array<double> y(jacc::sharded(ds),
                          std::vector<double>(static_cast<std::size_t>(n),
                                              2.0));
    jacc::array<double> u(jacc::sharded(ds),
                          std::vector<double>(static_cast<std::size_t>(n),
                                              0.5));
    jacc::array<double> next(jacc::sharded(ds),
                             std::vector<double>(static_cast<std::size_t>(n),
                                                 0.5));
    ds.reset_clocks(); // exclude the scatter

    const jacc::device_set_scope scope(ds);

    jacc::parallel_for(
        jacc::hints{.name = "axpy", .flops_per_index = 2.0,
                    .bytes_per_index = 24.0},
        n,
        [](index_t i, jacc::array<double>& xs, const jacc::array<double>& ys) {
          xs[i] += 2.5 * static_cast<double>(ys[i]);
        },
        x, y);
    const double t_axpy = ds.sync();

    const double dot = jacc::parallel_reduce(
        jacc::hints{.name = "dot", .flops_per_index = 2.0,
                    .bytes_per_index = 16.0},
        n,
        [](index_t i, const jacc::array<double>& xs,
           const jacc::array<double>& ys) {
          return static_cast<double>(xs[i]) * static_cast<double>(ys[i]);
        },
        x, y);
    const double t_dot = ds.sync() - t_axpy;

    // The stencil hint is the whole halo story: radius-1 ghosts are sized,
    // exchanged on the shard streams and awaited by each device's kernel.
    jacc::parallel_for(
        jacc::hints::stencil(1), n,
        [n](index_t i, const jacc::array<double>& us,
            jacc::array<double>& ns) {
          if (i == 0 || i == n - 1) {
            ns[i] = static_cast<double>(us[i]);
          } else {
            ns[i] = (static_cast<double>(us[i - 1]) +
                     static_cast<double>(us[i]) +
                     static_cast<double>(us[i + 1])) /
                    3.0;
          }
        },
        u, next);
    const double t_total = ds.sync();
    const double t_smooth = t_total - t_axpy - t_dot;

    if (ndev == 1) {
      base_total = t_total;
    }
    std::printf("%8d %14.1f %14.1f %14.1f %9.2fx   (dot=%.0f)\n", ndev,
                t_axpy, t_dot, t_smooth, base_total / t_total, dot);
  }
  return 0;
}
