// HPCCG/MiniFE-style conjugate-gradient demo (paper Sec. V-C).
//
// Solves two problems end to end through the JACC front end:
//   1. the paper's diagonally dominant tridiagonal system (Fig. 12), and
//   2. the real HPCCG operator: a 27-point stencil on an nx x ny x nz grid
//      with exact solution of all ones.
//
//   ./cg_solver [n_tridiag=200000] [nx=16] [ny=16] [nz=16]
//   JACC_BACKEND=amdgpu ./cg_solver
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cg/solver.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using jacc::index_t;
  jacc::initialize();
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 200'000;
  const index_t nx = argc > 2 ? std::atoll(argv[2]) : 16;
  const index_t ny = argc > 3 ? std::atoll(argv[3]) : 16;
  const index_t nz = argc > 4 ? std::atoll(argv[4]) : 16;

  std::printf("backend: %s\n",
              std::string(jacc::to_string(jacc::current_backend())).c_str());

  // --- tridiagonal system (Fig. 12's matrix, b = A * sin profile) ----------
  {
    jaccx::cg::tridiag_system A(n);
    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      x_true[static_cast<std::size_t>(i)] =
          std::sin(0.001 * static_cast<double>(i));
    }
    std::vector<double> b_host(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      double acc = 4.0 * x_true[static_cast<std::size_t>(i)];
      if (i > 0) {
        acc += x_true[static_cast<std::size_t>(i - 1)];
      }
      if (i + 1 < n) {
        acc += x_true[static_cast<std::size_t>(i + 1)];
      }
      b_host[static_cast<std::size_t>(i)] = acc;
    }
    jaccx::cg::darray b(b_host);
    jaccx::cg::darray x(n);
    jaccx::stopwatch sw;
    const auto res = jaccx::cg::cg_solve(A, b, x, {.max_iterations = 200,
                                                   .tolerance = 1e-10});
    double max_err = 0.0;
    for (index_t i = 0; i < n; ++i) {
      max_err = std::max(max_err,
                         std::abs(x.host_data()[i] -
                                  x_true[static_cast<std::size_t>(i)]));
    }
    std::printf("tridiag n=%lld: %s in %d iterations, rel residual %.2e, "
                "max error %.2e, wall %.1f ms\n",
                static_cast<long long>(n),
                res.converged ? "converged" : "NOT converged", res.iterations,
                res.relative_residual, max_err, sw.elapsed_ms());
  }

  // --- HPCCG 27-point problem ----------------------------------------------
  {
    const auto host = jaccx::cg::make_hpccg_27pt(nx, ny, nz);
    jaccx::cg::csr_system A(host);
    jaccx::cg::darray b(host.rhs_for_ones());
    jaccx::cg::darray x(A.rows);
    jaccx::stopwatch sw;
    const auto res = jaccx::cg::cg_solve(A, b, x, {.max_iterations = 500,
                                                   .tolerance = 1e-10});
    double max_err = 0.0;
    for (index_t i = 0; i < A.rows; ++i) {
      max_err = std::max(max_err, std::abs(x.host_data()[i] - 1.0));
    }
    std::printf("hpccg %lldx%lldx%lld (%lld rows, %lld nnz): %s in %d "
                "iterations, rel residual %.2e, max error vs ones %.2e, "
                "wall %.1f ms\n",
                static_cast<long long>(nx), static_cast<long long>(ny),
                static_cast<long long>(nz),
                static_cast<long long>(A.rows),
                static_cast<long long>(host.nnz()),
                res.converged ? "converged" : "NOT converged", res.iterations,
                res.relative_residual, max_err, sw.elapsed_ms());
  }

  if (auto* dev = jacc::backend_device(jacc::current_backend())) {
    std::printf("simulated %s device time: %.1f us\n",
                dev->model().name.c_str(), dev->tl().now_us());
  }
  return 0;
}
