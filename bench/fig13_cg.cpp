// Fig. 13 reproduction: conjugate-gradient time per iteration (the paper's
// Fig. 12 operation sequence on a diagonally dominant tridiagonal system),
// device-specific vs JACC, four architectures.
//
// The paper times one iteration at N = 100M; the simulator sweeps to 2^22
// and the cost model is linear in N beyond cache sizes, so the ratios at
// the largest size stand in for the 100M point (EXPERIMENTS.md discusses
// the extrapolation).  Summary checks the Sec. V-C speedups: ~17x (MI100),
// ~68x (A100), ~4x (Max 1550).
#include <cstdio>

#include "fig_common.hpp"
#include "threadpool/thread_pool.hpp"

namespace {

using namespace jaccx::bench;

constexpr index_t sizes[] = {1 << 14, 1 << 17, 1 << 20, 1 << 22};

void bench_point(benchmark::State& state, arch a, bool via_jacc, index_t n) {
  double us = 0.0;
  for (auto _ : state) {
    us = cg_iteration_us(a, via_jacc, n);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}

/// Wall-clock reference on the real `threads` back end (default-measured
/// time, not simulated).  Not a paper figure, but it puts the portable
/// layer's host-side cost on the same sweep — and under JACC_PROFILE=trace
/// it is what populates the trace with real threads-backend kernels and
/// pool worker busy/park slices alongside the simulated timelines.
void bench_host_wallclock(benchmark::State& state, jacc::backend be,
                          index_t n) {
  jacc::scoped_backend sb(be);
  jaccx::cg::paper_state st(n);
  jaccx::cg::paper_iteration(st); // warm-up
  for (auto _ : state) {
    jaccx::cg::paper_iteration(st);
  }
}

void register_all() {
  // Wall-clock host rows on both real back ends: under
  // JACC_PROFILE=roofline these are the "serial" and "threads" targets of
  // the roof-placement table (real rates against the configured host roof).
  const struct {
    const char* name;
    jacc::backend be;
  } host_backends[] = {{"serial_wallclock", jacc::backend::serial},
                       {"threads_wallclock", jacc::backend::threads}};
  for (const auto& hb : host_backends) {
    for (index_t n : sizes) {
      const std::string name =
          std::string("fig13/cg/") + hb.name + "/jacc/" + std::to_string(n);
      const jacc::backend be = hb.be;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [be, n](benchmark::State& st) { bench_host_wallclock(st, be, n); })
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
  for (const auto& a : all_archs) {
    for (bool via_jacc : {false, true}) {
      for (index_t n : sizes) {
        const std::string name = std::string("fig13/cg/") + a.name + "/" +
                                 (via_jacc ? "jacc" : "native") + "/" +
                                 std::to_string(n);
        benchmark::RegisterBenchmark(name.c_str(), [a, via_jacc, n](benchmark::State& st) {
              bench_point(st, a, via_jacc, n);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== Fig. 13 paper-parity summary (Sec. V-C) ===");
  const index_t n = 1 << 22;
  const double cpu = cg_iteration_us(all_archs[0], true, n);
  const double paper_speedup[] = {1.0, 17.0, 68.0, 4.0};
  for (std::size_t k = 0; k < 4; ++k) {
    const auto& a = all_archs[k];
    const double native_us = cg_iteration_us(a, false, n);
    const double jacc_us = cg_iteration_us(a, true, n);
    std::printf("%-8s n=%lld: native %10.1f us, JACC %10.1f us "
                "(overhead %+5.1f%%), JACC speedup vs CPU %5.1fx "
                "(paper: %.0fx)\n",
                a.name, static_cast<long long>(n), native_us, jacc_us,
                (jacc_us / native_us - 1.0) * 100.0, cpu / jacc_us,
                paper_speedup[k]);
  }
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("fig13_cg");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
