// Shared measurement runners for the figure-reproduction benchmarks.
//
// Every figure in the paper's evaluation compares, per architecture, the
// device-specific code against the JACC code.  A runner here performs one
// such measurement and returns *simulated* microseconds from the device
// timeline; the bench binaries feed that into google-benchmark's
// manual-time mode and print paper-parity summaries.
//
// Measurement protocol: allocate fresh state, run the operation once to
// warm the modeled cache (the paper reports steady-state times), then time
// the second run.  Event logging is disabled during sweeps.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "blas/native_cpu.hpp"
#include "blas/native_gpu.hpp"
#include "cg/native.hpp"
#include "cg/solver.hpp"
#include "core/jacc.hpp"
#include "lbm/native.hpp"
#include "lbm/simulation.hpp"

namespace jaccx::bench {

using jacc::backend;
using jacc::index_t;

/// One of the paper's four testbeds.
struct arch {
  const char* name;    ///< row label, e.g. "rome64"
  backend be;          ///< JACC backend targeting it
};

inline constexpr arch all_archs[] = {
    {"rome64", backend::cpu_rome},
    {"mi100", backend::hip_mi100},
    {"a100", backend::cuda_a100},
    {"max1550", backend::oneapi_max1550},
};

inline sim::device& dev_of(const arch& a) {
  return *jacc::backend_device(a.be);
}

/// Runs op() twice (warm-up + timed) on the arch's device and returns the
/// simulated duration of the second run in microseconds.
template <class Op>
double timed_us(const arch& a, const Op& op) {
  auto& dev = dev_of(a);
  dev.tl().set_logging(false);
  dev.cache().reset();
  op(); // warm-up: populates the modeled cache
  const double t0 = dev.tl().now_us();
  op();
  const double t1 = dev.tl().now_us();
  dev.tl().set_logging(true);
  dev.reset_clock();
  return t1 - t0;
}

// --- Fig. 8: 1D AXPY / DOT --------------------------------------------------

double blas1_1d_us(const arch& a, bool via_jacc, bool is_dot, index_t n);

// --- Fig. 9: 2D AXPY / DOT --------------------------------------------------

double blas1_2d_us(const arch& a, bool via_jacc, bool is_dot, index_t edge);

// --- Fig. 11: LBM D2Q9 pull, time per step ----------------------------------

double lbm_step_us(const arch& a, bool via_jacc, index_t edge);

// --- Fig. 13: CG, time per iteration ----------------------------------------

double cg_iteration_us(const arch& a, bool via_jacc, index_t n);

/// Pretty one-line summary row: "fig08  a100  jacc  axpy  n=1048576  42.1us".
std::string row(const char* figure, const char* device, const char* model,
                const char* op, index_t n, double us);

/// Machine-readable per-benchmark output.  Construct at the top of a bench
/// main(); forces profiler collection so the per-kernel aggregator is
/// populated regardless of JACC_PROFILE, and at destruction writes
/// `BENCH_<name>.json` (run config + per-kernel stats + pool counters) next
/// to the working directory, then flushes the profiler's own outputs via
/// jacc::finalize().
class bench_session {
public:
  explicit bench_session(std::string name);
  ~bench_session();
  bench_session(const bench_session&) = delete;
  bench_session& operator=(const bench_session&) = delete;

  /// Adds one custom top-level section to the JSON, emitted as
  /// `"key": value` right after "config".  `value` must already be a
  /// valid JSON value (object/array/number); it is written verbatim.
  void add_section(std::string key, std::string json_value);

private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> extra_;
};

} // namespace jaccx::bench
