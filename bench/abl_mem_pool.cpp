// Ablation for the mem-pool subsystem (src/mem): JACC_MEM_POOL=bucket vs
// none on the two operations the pool was built for.
//
//   dot   one parallel_reduce per call.  Under `none` every call pays the
//         seed path (fresh partials+result allocation and two fill kernels
//         on a GPU; a fresh slot vector on threads).  Under `bucket` the
//         persistent workspace absorbs all of it after the first call.
//   cg    the paper's Fig. 12 iteration: two reductions plus five
//         elementwise kernels per iteration, the shape that made the
//         small-size DOT overhead visible in Figs. 8/9.
//
// Two measurement domains, matching the repo convention: simulated time on
// one GPU (a100) where the saving is the skipped fill kernels + alloc
// events, and real wall-clock on the threads back end where the saving is
// malloc/free churn and reduction-scratch reuse.
#include <chrono>
#include <cstdio>
#include <vector>

#include "fig_common.hpp"
#include "mem/pool.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::mem::pool_mode;
using jaccx::mem::scoped_mode;

constexpr index_t sizes[] = {1 << 12, 1 << 16, 1 << 20};
constexpr const char* mode_names[] = {"bucket", "none"};
constexpr pool_mode modes[] = {pool_mode::bucket, pool_mode::none};
constexpr arch gpu = all_archs[2]; // a100

double sim_us(pool_mode m, bool is_cg, index_t n) {
  const scoped_mode pin(m);
  // timed_us warms up once before timing, so under `bucket` the timed run
  // sees a populated pool (steady state), exactly like the figure benches.
  return is_cg ? cg_iteration_us(gpu, true, n)
               : blas1_1d_us(gpu, true, true, n);
}

/// Wall-clock mean per op on the real threads back end.  The state is
/// reconstructed every rep so array acquire/release churn goes through the
/// pool too, not just the reduction scratch.
double threads_us(pool_mode m, bool is_cg, index_t n) {
  const scoped_mode pin(m);
  jacc::scoped_backend sb(jacc::backend::threads);
  const int reps = n >= (1 << 20) ? 20 : 200;
  const std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  const auto op = [&] {
    if (is_cg) {
      jaccx::cg::paper_state st(n);
      jaccx::cg::paper_iteration(st);
    } else {
      jaccx::blas::darray x(host), y(host);
      benchmark::DoNotOptimize(jaccx::blas::jacc_dot(n, x, y));
    }
  };
  op(); // warm-up: populates the pool (bucket) / faults in pages (none)
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    op();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

void register_all() {
  for (int mi = 0; mi < 2; ++mi) {
    for (const bool is_cg : {false, true}) {
      for (const index_t n : sizes) {
        const char* op = is_cg ? "cg" : "dot";
        const std::string sim_name = std::string("abl_mem_pool/a100/") + op +
                                     "/" + mode_names[mi] + "/" +
                                     std::to_string(n);
        benchmark::RegisterBenchmark(
            sim_name.c_str(),
            [mi, is_cg, n](benchmark::State& st) {
              double us = 0.0;
              for (auto _ : st) {
                us = sim_us(modes[mi], is_cg, n);
                st.SetIterationTime(us * 1e-6);
              }
              st.counters["sim_us"] = us;
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
        const std::string thr_name = std::string("abl_mem_pool/threads/") +
                                     op + "/" + mode_names[mi] + "/" +
                                     std::to_string(n);
        benchmark::RegisterBenchmark(
            thr_name.c_str(),
            [mi, is_cg, n](benchmark::State& st) {
              double us = 0.0;
              for (auto _ : st) {
                us = threads_us(modes[mi], is_cg, n);
                st.SetIterationTime(us * 1e-6);
              }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== mem-pool ablation summary: JACC_MEM_POOL bucket vs none "
            "===");
  for (const bool is_cg : {false, true}) {
    const char* op = is_cg ? "cg " : "dot";
    for (const index_t n : sizes) {
      const double sim_none = sim_us(pool_mode::none, is_cg, n);
      const double sim_bucket = sim_us(pool_mode::bucket, is_cg, n);
      const double thr_none = threads_us(pool_mode::none, is_cg, n);
      const double thr_bucket = threads_us(pool_mode::bucket, is_cg, n);
      std::printf("%s n=%-8lld a100(sim): none %9.2f us, bucket %9.2f us "
                  "(%+6.1f%%) | threads(wall): none %9.2f us, bucket "
                  "%9.2f us (%+6.1f%%)\n",
                  op, static_cast<long long>(n), sim_none, sim_bucket,
                  (sim_bucket / sim_none - 1.0) * 100.0, thr_none,
                  thr_bucket, (thr_bucket / thr_none - 1.0) * 100.0);
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("abl_mem_pool");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
