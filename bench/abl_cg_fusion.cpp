// Ablation: two-level kernel fusion on the CG BLAS chain (docs/FUSION.md).
//
// Runs one Fig. 12 paper iteration per (arch, fuse mode) and splits the
// simulated DRAM traffic the cache model charged into the matvec and the
// BLAS chain (every kernel named "cg.*"; the matvec is
// "jacc.tridiag_matvec").  The fused chain re-groups the listing's 12
// operations into 5 launches, so each vector is streamed once per group
// instead of once per operation — the measured chain traffic must drop
// ≥1.5× on the simulated devices, and this binary exits nonzero if it
// does not.  The threads rows report the real wall-clock effect of the
// same regrouping.  Roofline rows for the fused kernels (higher
// arithmetic intensity at the same traffic) land in BENCH_cg_fusion.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;

struct chain_stats {
  double chain_dram = 0.0; ///< bytes charged to "cg.*" kernels
  double total_dram = 0.0; ///< bytes charged to every kernel event
  double iter_us = 0.0;    ///< simulated time of the whole iteration
};

/// One warmed paper iteration on `a` under fuse mode `m`, with the event
/// log capturing per-kernel DRAM tallies.
chain_stats measure_sim(const arch& a, jacc::fuse_mode m, index_t n) {
  const jacc::scoped_backend sb(a.be);
  const jacc::scoped_fuse sf(m);
  auto& dev = dev_of(a);
  jaccx::cg::paper_state st(n);
  dev.tl().set_logging(false);
  dev.cache().reset();
  jaccx::cg::paper_iteration(st); // warm-up: steady-state modeled cache
  dev.reset_clock();
  dev.tl().set_logging(true);
  const double t0 = dev.tl().now_us();
  jaccx::cg::paper_iteration(st);
  const double t1 = dev.tl().now_us();
  chain_stats out;
  out.iter_us = t1 - t0;
  for (const auto& e : dev.tl().events()) {
    if (e.kind != jaccx::sim::event_kind::kernel) {
      continue;
    }
    const double bytes = static_cast<double>(e.tally.dram_bytes);
    out.total_dram += bytes;
    if (e.name.rfind("cg.", 0) == 0) {
      out.chain_dram += bytes;
    }
  }
  dev.reset_clock();
  return out;
}

/// Real wall-clock per paper iteration on the threads backend.
double measure_threads_us(jacc::fuse_mode m, index_t n, int reps) {
  const jacc::scoped_backend sb(jacc::backend::threads);
  const jacc::scoped_fuse sf(m);
  jaccx::cg::paper_state st(n);
  jaccx::cg::paper_iteration(st); // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    jaccx::cg::paper_iteration(st);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() /
         static_cast<double>(reps);
}

} // namespace

int main() {
  // Populate roofline rows in BENCH_cg_fusion.json even when the user did
  // not ask for a profile (bench_session only forces collection).
  if (std::getenv("JACC_PROFILE") == nullptr) {
    jaccx::prof::set_mode(jaccx::prof::mode_collect |
                          jaccx::prof::mode_roofline);
  }
  const bench_session session("cg_fusion");

  // 32 MiB per vector: one chain group's working set far exceeds even the
  // a100's 40 MiB modeled cache, so every sweep streams from DRAM.
  const index_t n = index_t{1} << 22;
  bool ok = true;

  std::puts("=== CG BLAS-chain fusion ablation: JACC_FUSE=none vs all ===");
  std::printf("%-8s %14s %14s %7s %14s %14s\n", "arch", "chain none B",
              "chain all B", "ratio", "iter none B", "iter all B");
  for (const auto& a : all_archs) {
    if (a.be != jacc::backend::hip_mi100 &&
        a.be != jacc::backend::cuda_a100) {
      continue; // one small-cache and one large-cache testbed suffice
    }
    const chain_stats eager = measure_sim(a, jacc::fuse_mode::none, n);
    const chain_stats fused = measure_sim(a, jacc::fuse_mode::all, n);
    const double ratio = fused.chain_dram > 0.0
                             ? eager.chain_dram / fused.chain_dram
                             : 0.0;
    std::printf("%-8s %14.0f %14.0f %6.2fx %14.0f %14.0f\n", a.name,
                eager.chain_dram, fused.chain_dram, ratio, eager.total_dram,
                fused.total_dram);
    if (fused.chain_dram * 1.5 > eager.chain_dram) {
      std::fprintf(stderr,
                   "FAIL: %s fused BLAS chain charged %.0f DRAM bytes, "
                   "needs <= %.0f (1/1.5 of the %.0f eager bytes)\n",
                   a.name, fused.chain_dram, eager.chain_dram / 1.5,
                   eager.chain_dram);
      ok = false;
    }
  }

  const index_t n_threads = index_t{1} << 20;
  const int reps = 5;
  const double wall_eager =
      measure_threads_us(jacc::fuse_mode::none, n_threads, reps);
  const double wall_fused =
      measure_threads_us(jacc::fuse_mode::all, n_threads, reps);
  std::printf("\nthreads  n=%lld: eager %9.1f us/iter, fused %9.1f us/iter "
              "-> %.2fx\n",
              static_cast<long long>(n_threads), wall_eager, wall_fused,
              wall_eager / wall_fused);

  if (!ok) {
    return 1;
  }
  std::puts("\nOK: fused chain DRAM traffic >= 1.5x below eager on all "
            "measured sim archs");
  return 0;
}
