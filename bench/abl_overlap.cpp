// Ablation / extension bench: transfer/compute overlap with simulated
// streams (paper Sec. VII: "more efficient exploitation of available
// resources").  A chunked pipeline of H2D + kernel + D2H on the A100 model,
// serial versus 2- and 4-stream versions, across arithmetic intensities.
// The host<->device link is a single shared resource (transfers serialize
// across streams), so overlap only pays once the kernel is expensive enough
// to hide under the next chunk's copy — the classic roofline of pipelining.
#include <cstdio>

#include "fig_common.hpp"
#include "sim/stream.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::sim::device_buffer;
using jaccx::sim::stream;
using jaccx::sim::stream_scope;

constexpr int chunks = 8;

double pipeline_us(int nstreams, index_t chunk_n, double flops_per_index) {
  auto& dev = jaccx::sim::get_device("a100");
  dev.tl().set_logging(false);
  dev.reset_clock();
  dev.cache().reset();
  std::vector<double> host(static_cast<std::size_t>(chunk_n), 1.0);
  std::vector<double> out(static_cast<std::size_t>(chunk_n), 0.0);

  std::vector<device_buffer<double>> bufs;
  std::vector<stream> streams;
  bufs.reserve(static_cast<std::size_t>(nstreams));
  streams.reserve(static_cast<std::size_t>(nstreams));
  for (int s = 0; s < nstreams; ++s) {
    bufs.emplace_back(dev, chunk_n);
    streams.emplace_back(dev);
  }

  const auto upload = [&](device_buffer<double>& buf) {
    buf.copy_from_host(host.data());
  };
  const auto compute_download = [&](device_buffer<double>& buf) {
    auto sp = buf.span();
    jaccx::sim::launch_config cfg;
    cfg.block = jaccx::sim::dim3{1024};
    cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(chunk_n, 1024)};
    cfg.name = "pipeline.kernel";
    cfg.flops_per_index = flops_per_index;
    jaccx::sim::launch(dev, cfg, [sp, chunk_n](jaccx::sim::kernel_ctx& ctx) {
      const index_t i = ctx.global_x();
      if (i < chunk_n) {
        sp[i] = static_cast<double>(sp[i]) * 2.0 + 1.0;
      }
    });
    buf.copy_to_host(out.data());
  };

  double wall = 0.0;
  if (nstreams <= 1) {
    for (int c = 0; c < chunks; ++c) {
      upload(bufs[0]);
      compute_download(bufs[0]);
    }
    wall = dev.tl().now_us();
  } else {
    // Software-pipelined: chunk c+1's upload is enqueued on its stream
    // before chunk c's kernel/download, as real async code does.
    {
      stream_scope in(streams[0]);
      upload(bufs[0]);
    }
    for (int c = 0; c < chunks; ++c) {
      if (c + 1 < chunks) {
        const auto nxt = static_cast<std::size_t>((c + 1) % nstreams);
        stream_scope in(streams[nxt]);
        upload(bufs[nxt]);
      }
      const auto cur = static_cast<std::size_t>(c % nstreams);
      stream_scope in(streams[cur]);
      compute_download(bufs[cur]);
    }
    std::vector<stream*> all;
    for (auto& s : streams) {
      all.push_back(&s);
    }
    wall = dev.tl().now_us();
    for (stream* s : all) {
      wall = std::max(wall, s->now_us());
    }
    // Align (join takes an initializer_list; fold manually for N streams).
    for (stream* s : all) {
      jaccx::sim::join(dev, {s});
    }
  }
  dev.tl().set_logging(true);
  dev.reset_clock();
  return wall;
}

void register_all() {
  for (int nstreams : {1, 2, 4}) {
    for (double fpi : {8.0, 1000.0, 8000.0}) {
      const index_t chunk_n = index_t{1} << 17;
      const std::string name = std::string("abl_overlap/a100/streams_") +
                               std::to_string(nstreams) + "/flops_" +
                               std::to_string(static_cast<int>(fpi));
      benchmark::RegisterBenchmark(
          name.c_str(), [nstreams, chunk_n, fpi](benchmark::State& st) {
            double us = 0.0;
            for (auto _ : st) {
              us = pipeline_us(nstreams, chunk_n, fpi);
              st.SetIterationTime(us * 1e-6);
            }
            st.counters["sim_us"] = us;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

void print_summary() {
  std::puts("\n=== stream overlap summary (Sec. VII future work) ===");
  const index_t chunk_n = index_t{1} << 17;
  for (double fpi : {8.0, 1000.0, 8000.0}) {
    const double t1 = pipeline_us(1, chunk_n, fpi);
    const double t2 = pipeline_us(2, chunk_n, fpi);
    const double t4 = pipeline_us(4, chunk_n, fpi);
    std::printf("chunk %lld x%d, %4.0f flop/elem: serial %9.1f us, "
                "2 streams %9.1f us (%.2fx), 4 streams %9.1f us (%.2fx)\n",
                static_cast<long long>(chunk_n), chunks, fpi, t1, t2,
                t1 / t2, t4, t1 / t4);
  }
  std::puts("(the shared host<->device link bounds the gain: only compute "
            "hides under copies)");
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
