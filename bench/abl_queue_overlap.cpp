// abl_overlap through the public API: the same chunked H2D + AXPY + D2H
// pipeline, but written entirely with jacc::queue / jacc::array /
// jacc::parallel_for — the code a JACC user would actually ship.  K chunks
// round-robin over N queues; each queue's per-chunk chain stays in order
// while different queues' transfers and kernels overlap in simulated time
// (the shared host<->device link still serializes copies, so the win is
// compute hiding under other chunks' transfers).  The acceptance bar for
// the queue front end is the 4-queue ratio on the a100 model: >= 1.3x over
// the single-queue run at the balanced arithmetic intensity.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/jacc.hpp"
#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;

constexpr int chunks = 8;
constexpr index_t chunk_n = index_t{1} << 15;
// Kernel cost a bit above the three per-chunk transfers on the a100 link
// (~81 us vs ~66 us): the link calendar serializes copies across queues, so
// the kernel must be large enough for other queues' transfers to hide under
// it (see abl_overlap for the intensity sweep).
constexpr double balanced_fpi = 24'000.0;

void axpy(index_t i, double alpha, const jacc::array<double>& x,
          jacc::array<double>& y) {
  y[i] = y[i] + alpha * x[i];
}

double pipeline_us(int nqueues, double flops_per_index) {
  const jacc::scoped_backend sb(jacc::backend::cuda_a100);
  auto& dev = *jacc::backend_device(jacc::backend::cuda_a100);
  dev.tl().set_logging(false);

  std::vector<double> hx(static_cast<std::size_t>(chunk_n), 1.0);
  std::vector<double> hy(static_cast<std::size_t>(chunk_n), 0.5);
  std::vector<double> out(static_cast<std::size_t>(chunk_n), 0.0);

  double wall = 0.0;
  {
    // One x/y buffer pair per queue, allocated before the clock reset so
    // both configurations time only the pipeline itself.
    std::vector<std::unique_ptr<jacc::array<double>>> xs, ys;
    for (int s = 0; s < nqueues; ++s) {
      xs.push_back(std::make_unique<jacc::array<double>>(chunk_n));
      ys.push_back(std::make_unique<jacc::array<double>>(chunk_n));
    }
    dev.reset_clock();
    dev.cache().reset();

    std::vector<jacc::queue> queues(static_cast<std::size_t>(nqueues));
    const jacc::hints h{.name = "queue_overlap.axpy",
                        .flops_per_index = flops_per_index};
    for (int c = 0; c < chunks; ++c) {
      const auto s = static_cast<std::size_t>(c % nqueues);
      jacc::queue& q = queues[s];
      xs[s]->copy_from_host(q, hx.data());
      ys[s]->copy_from_host(q, hy.data());
      jacc::parallel_for(q, h, chunk_n, axpy, 2.0, *xs[s], *ys[s]);
      ys[s]->copy_to_host(q, out.data());
    }
    jacc::synchronize();
    wall = dev.tl().now_us();
  }
  dev.tl().set_logging(true);
  dev.reset_clock();
  return wall;
}

void register_all() {
  for (int nqueues : {1, 2, 4}) {
    for (double fpi : {8.0, 2000.0, balanced_fpi}) {
      const std::string name = std::string("abl_queue_overlap/a100/queues_") +
                               std::to_string(nqueues) + "/flops_" +
                               std::to_string(static_cast<int>(fpi));
      benchmark::RegisterBenchmark(
          name.c_str(), [nqueues, fpi](benchmark::State& st) {
            double us = 0.0;
            for (auto _ : st) {
              us = pipeline_us(nqueues, fpi);
              st.SetIterationTime(us * 1e-6);
            }
            st.counters["sim_us"] = us;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

void print_summary() {
  std::puts("\n=== queue overlap summary (public jacc::queue API) ===");
  for (double fpi : {8.0, 2000.0, balanced_fpi}) {
    const double t1 = pipeline_us(1, fpi);
    const double t2 = pipeline_us(2, fpi);
    const double t4 = pipeline_us(4, fpi);
    std::printf("chunk %lld x%d, %5.0f flop/elem: 1 queue %9.1f us, "
                "2 queues %9.1f us (%.2fx), 4 queues %9.1f us (%.2fx)\n",
                static_cast<long long>(chunk_n), chunks, fpi, t1, t2, t1 / t2,
                t4, t1 / t4);
  }
  const double ratio =
      pipeline_us(1, balanced_fpi) / pipeline_us(4, balanced_fpi);
  std::printf("acceptance: 4-queue speedup at %0.f flop/elem = %.2fx "
              "(bar: >= 1.30x) %s\n",
              balanced_fpi, ratio, ratio >= 1.3 ? "PASS" : "FAIL");
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("queue_overlap");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
