// Acceptance bench for the auto-sharding layer (docs/SHARDING.md): strong
// scaling of an auto-sharded CG iteration chain and an LBM-like heavy
// stencil on 1/2/4 simulated A100s, plus the measured-rebalance recovery
// scenario with one device slowed 2x.  Everything goes through the public
// device_set_scope front end — the kernels are the ordinary global-index
// single-device ones.
//
// Exits nonzero unless the bars hold:
//   - CG chain and LBM step each reach >= 1.7x on 2 devices, >= 3.0x on 4
//   - measured rebalance recovers >= 80% of the ideal plan's win over the
//     naive equal split when device 0 runs at half speed
// The bench_session writes BENCH_auto_shard.json (CI artifact).
#include <cstdio>
#include <utility>
#include <vector>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;
using jacc::device_set;
using jacc::device_set_scope;
using jacc::dims2;

constexpr index_t cg_n = index_t{1} << 23;
constexpr index_t lbm_rows = 4096;
constexpr index_t lbm_cols = 4096;

std::vector<double> filled(index_t n, double v) {
  return std::vector<double>(static_cast<std::size_t>(n), v);
}

// --- CG iteration chain: matvec (radius-1) + 2 dots + 2 axpys + xpay ---------

struct cg_state {
  device_set ds;
  jacc::array<double> x, r, p, s;
  index_t n;

  cg_state(int ndev, index_t n_)
      : ds(backend::cuda_a100, ndev),
        x(jacc::sharded(ds), filled(n_, 0.0)),
        r(jacc::sharded(ds), filled(n_, 1.0)),
        p(jacc::sharded(ds), filled(n_, 0.5)),
        s(jacc::sharded(ds), filled(n_, 0.0)), n(n_) {}
};

void cg_iteration(cg_state& st) {
  const index_t n = st.n;
  const device_set_scope scope(st.ds);
  jacc::parallel_for(
      jacc::hints{.name = "cg.matvec", .flops_per_index = 3.0,
                  .bytes_per_index = 16.0, .stencil_radius = 1},
      n,
      [n](index_t i, const jacc::array<double>& p, jacc::array<double>& s) {
        const double left = i > 0 ? static_cast<double>(p[i - 1]) : 0.0;
        const double right =
            i + 1 < n ? static_cast<double>(p[i + 1]) : 0.0;
        s[i] = 4.0 * static_cast<double>(p[i]) - left - right;
      },
      st.p, st.s);
  const double ps = jacc::parallel_reduce(
      jacc::hints{.name = "cg.dot_ps", .flops_per_index = 2.0,
                  .bytes_per_index = 16.0},
      n,
      [](index_t i, const jacc::array<double>& p,
         const jacc::array<double>& s) {
        return static_cast<double>(p[i]) * static_cast<double>(s[i]);
      },
      st.p, st.s);
  // Fixed small steps keep the values bounded across benched iterations;
  // the charge structure is what the bench measures.
  const double alpha = 0.05;
  jacc::parallel_for(
      jacc::hints{.name = "cg.axpy_x", .flops_per_index = 2.0,
                  .bytes_per_index = 24.0},
      n,
      [alpha](index_t i, jacc::array<double>& x,
              const jacc::array<double>& p) {
        x[i] += alpha * static_cast<double>(p[i]);
      },
      st.x, st.p);
  jacc::parallel_for(
      jacc::hints{.name = "cg.axpy_r", .flops_per_index = 2.0,
                  .bytes_per_index = 24.0},
      n,
      [alpha](index_t i, jacc::array<double>& r,
              const jacc::array<double>& s) {
        r[i] -= alpha * static_cast<double>(s[i]);
      },
      st.r, st.s);
  const double rr = jacc::parallel_reduce(
      jacc::hints{.name = "cg.dot_rr", .flops_per_index = 2.0,
                  .bytes_per_index = 16.0},
      n,
      [](index_t i, const jacc::array<double>& r) {
        return static_cast<double>(r[i]) * static_cast<double>(r[i]);
      },
      st.r);
  const double beta = 0.5;
  jacc::parallel_for(
      jacc::hints{.name = "cg.xpay", .flops_per_index = 2.0,
                  .bytes_per_index = 24.0},
      n,
      [beta](index_t i, jacc::array<double>& p,
             const jacc::array<double>& r) {
        p[i] = static_cast<double>(r[i]) + beta * static_cast<double>(p[i]);
      },
      st.p, st.r);
  benchmark::DoNotOptimize(ps + rr);
}

/// Steady-state simulated time of one CG iteration on `st`'s device set.
double cg_iter_us(cg_state& st, int warmups = 1) {
  for (int w = 0; w < warmups; ++w) {
    cg_iteration(st);
  }
  const double t0 = st.ds.sync();
  cg_iteration(st);
  return st.ds.sync() - t0;
}

double cg_chain_us(int ndev) {
  cg_state st(ndev, cg_n);
  st.ds.reset_clocks(); // exclude the scatter
  return cg_iter_us(st);
}

// --- LBM-like heavy stencil: D2Q9-weight traffic, radius-1 pull --------------

struct lbm_state {
  device_set ds;
  jacc::array2d<double> u, next;

  explicit lbm_state(int ndev)
      : ds(backend::cuda_a100, ndev),
        u(jacc::sharded(ds), filled(lbm_rows * lbm_cols, 1.0), lbm_rows,
          lbm_cols),
        next(jacc::sharded(ds), filled(lbm_rows * lbm_cols, 0.0), lbm_rows,
             lbm_cols) {}
};

void lbm_step(lbm_state& st) {
  const index_t rows = lbm_rows;
  const index_t cols = lbm_cols;
  const device_set_scope scope(st.ds);
  // Per-cell traffic of a D2Q9 pull step (9 reads + 9 writes of f64).
  jacc::parallel_for(
      jacc::hints{.name = "lbm.step", .flops_per_index = 50.0,
                  .bytes_per_index = 144.0, .stencil_radius = 1},
      dims2{rows, cols},
      [cols](index_t i, index_t j, const jacc::array2d<double>& u,
             jacc::array2d<double>& next) {
        const double c = static_cast<double>(u(i, j));
        const double w = j > 0 ? static_cast<double>(u(i, j - 1)) : c;
        const double e = j + 1 < cols ? static_cast<double>(u(i, j + 1)) : c;
        next(i, j) = 0.5 * c + 0.25 * (w + e);
      },
      st.u, st.next);
  std::swap(st.u, st.next);
}

double lbm_step_us(int ndev) {
  lbm_state st(ndev);
  st.ds.reset_clocks();
  lbm_step(st); // warm-up
  const double t0 = st.ds.sync();
  lbm_step(st);
  return st.ds.sync() - t0;
}

// --- rebalance recovery with one device slowed 2x ----------------------------

struct recovery_result {
  double naive_us = 0.0; ///< equal split, no rebalance
  double ideal_us = 0.0; ///< hand-set rate-proportional split
  double auto_us = 0.0;  ///< measured rebalance, after it settles
  double recovered() const {
    return (naive_us - auto_us) / (naive_us - ideal_us);
  }
};

recovery_result rebalance_recovery() {
  recovery_result out;
  const index_t n = index_t{1} << 22;
  { // Naive: pin the equal plan (set_weights disables rebalancing).
    cg_state st(2, n);
    st.ds.set_slowdown(0, 2.0);
    st.ds.set_weights({0.5, 0.5});
    st.ds.reset_clocks();
    out.naive_us = cg_iter_us(st);
  }
  { // Ideal: the rate-proportional plan for a half-speed device 0.
    cg_state st(2, n);
    st.ds.set_slowdown(0, 2.0);
    st.ds.set_weights({1.0, 2.0});
    st.ds.reset_clocks();
    out.ideal_us = cg_iter_us(st);
  }
  { // Auto: let the measured rebalancer find the plan, then measure.
    cg_state st(2, n);
    st.ds.set_slowdown(0, 2.0);
    st.ds.reset_clocks();
    out.auto_us = cg_iter_us(st, /*warmups=*/3);
  }
  return out;
}

// --- registration / acceptance -----------------------------------------------

void register_all() {
  for (int ndev : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("abl_auto_shard/cg_chain/devices_" + std::to_string(ndev)).c_str(),
        [ndev](benchmark::State& s) {
          double us = 0.0;
          for (auto _ : s) {
            us = cg_chain_us(ndev);
            s.SetIterationTime(us * 1e-6);
          }
          s.counters["sim_us"] = us;
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("abl_auto_shard/lbm_step/devices_" + std::to_string(ndev)).c_str(),
        [ndev](benchmark::State& s) {
          double us = 0.0;
          for (auto _ : s) {
            us = lbm_step_us(ndev);
            s.SetIterationTime(us * 1e-6);
          }
          s.counters["sim_us"] = us;
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
}

bool check(const char* what, double value, double bar) {
  const bool ok = value >= bar;
  std::printf("acceptance: %-28s %6.2f (bar: >= %.2f) %s\n", what, value,
              bar, ok ? "PASS" : "FAIL");
  return ok;
}

int acceptance() {
  std::puts("\n=== auto-shard acceptance (docs/SHARDING.md) ===");
  const double cg1 = cg_chain_us(1);
  const double cg2 = cg_chain_us(2);
  const double cg4 = cg_chain_us(4);
  std::printf("cg_chain  n=%lld: 1 dev %9.1f us, 2 dev %9.1f us, "
              "4 dev %9.1f us\n",
              static_cast<long long>(cg_n), cg1, cg2, cg4);
  const double lbm1 = lbm_step_us(1);
  const double lbm2 = lbm_step_us(2);
  const double lbm4 = lbm_step_us(4);
  std::printf("lbm_step  %lldx%lld: 1 dev %9.1f us, 2 dev %9.1f us, "
              "4 dev %9.1f us\n",
              static_cast<long long>(lbm_rows),
              static_cast<long long>(lbm_cols), lbm1, lbm2, lbm4);
  const auto rec = rebalance_recovery();
  std::printf("rebalance n=%d: naive %9.1f us, ideal %9.1f us, "
              "auto %9.1f us\n",
              1 << 22, rec.naive_us, rec.ideal_us, rec.auto_us);

  bool ok = true;
  ok &= check("cg speedup on 2 devices", cg1 / cg2, 1.7);
  ok &= check("cg speedup on 4 devices", cg1 / cg4, 3.0);
  ok &= check("lbm speedup on 2 devices", lbm1 / lbm2, 1.7);
  ok &= check("lbm speedup on 4 devices", lbm1 / lbm4, 3.0);
  ok &= check("rebalance recovery", rec.recovered(), 0.8);
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  const bench_session session("auto_shard");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return acceptance();
}
