// Extension bench: distributed CG scaling on the communicator substrate
// (paper Sec. II/VII: MPI.jl-style distributed configurations).
//
// Sweeps rank counts for one CG iteration at fixed global size (strong
// scaling) and fixed per-rank size (weak scaling), on InfiniBand-like and
// Ethernet-like fabrics.  The story: matvec/axpy shard perfectly, but the
// three allreduces and the halo exchange per iteration set a latency floor
// that the slow fabric multiplies.
#include <cstdio>

#include "dist/dist_cg.hpp"
#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::dist::communicator;
using jaccx::dist::nic_model;
using jaccx::dist::tridiag_cg;

double cg_iter_us(int ranks, index_t n, const nic_model& nic) {
  communicator comm(ranks, "a100", nic);
  comm.reset();
  tridiag_cg solver(comm, n);
  solver.bench_reset();
  solver.bench_iteration(); // warm-up
  const double t0 = comm.barrier();
  solver.bench_iteration();
  return comm.barrier() - t0;
}

void register_all() {
  for (bool ethernet : {false, true}) {
    const nic_model nic =
        ethernet ? nic_model::ethernet_like() : nic_model::infiniband_like();
    const char* fabric = ethernet ? "ethernet" : "infiniband";
    for (int ranks : {1, 2, 4, 8, 16, 32}) {
      for (bool weak : {false, true}) {
        const index_t n =
            weak ? (index_t{1} << 18) * ranks : index_t{1} << 22;
        const std::string name = std::string("abl_dist/") + fabric + "/" +
                                 (weak ? "weak" : "strong") + "/cg_iter/" +
                                 "ranks_" + std::to_string(ranks);
        benchmark::RegisterBenchmark(
            name.c_str(), [ranks, n, nic](benchmark::State& st) {
              double us = 0.0;
              for (auto _ : st) {
                us = cg_iter_us(ranks, n, nic);
                st.SetIterationTime(us * 1e-6);
              }
              st.counters["sim_us"] = us;
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== distributed CG scaling summary ===");
  const index_t n = 1 << 22;
  for (bool ethernet : {false, true}) {
    const nic_model nic =
        ethernet ? nic_model::ethernet_like() : nic_model::infiniband_like();
    const double t1 = cg_iter_us(1, n, nic);
    const double t8 = cg_iter_us(8, n, nic);
    const double t32 = cg_iter_us(32, n, nic);
    std::printf("%-11s n=%lld: 1 rank %9.1f us, 8 ranks %9.1f us (%.2fx), "
                "32 ranks %9.1f us (%.2fx)\n",
                ethernet ? "ethernet" : "infiniband",
                static_cast<long long>(n), t1, t8, t1 / t8, t32, t1 / t32);
  }
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
