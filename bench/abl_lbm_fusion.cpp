// Ablation: the Fig. 10 LBM formulation vs a register-fused variant.
//
// The paper's kernel stages the nine pulled distributions in a scratch
// lattice `f` (write), then re-reads them for the moments and again for the
// collision — roughly 27 global accesses per site where 18 would do.  The
// fused variant keeps the pulled values in registers.  Both produce
// bit-identical lattices (tests/extensions cover that); this bench measures
// the traffic difference per architecture.
#include <cstdio>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::sim::device_buffer;

double lbm_variant_us(const arch& a, bool fused, index_t edge) {
  auto& dev = dev_of(a);
  const index_t total = jaccx::lbm::q * edge * edge;
  std::vector<double> init(static_cast<std::size_t>(total));
  const index_t plane = edge * edge;
  for (int k = 0; k < jaccx::lbm::q; ++k) {
    for (index_t s = 0; s < plane; ++s) {
      init[static_cast<std::size_t>(k * plane + s)] =
          jaccx::lbm::weights[static_cast<std::size_t>(k)];
    }
  }
  device_buffer<double> df(dev, total), df1(dev, total), df2(dev, total),
      dw(dev, jaccx::lbm::q), dcx(dev, jaccx::lbm::q),
      dcy(dev, jaccx::lbm::q);
  df1.copy_from_host(init.data());
  dw.copy_from_host(jaccx::lbm::weights.data());
  dcx.copy_from_host(jaccx::lbm::vel_x.data());
  dcy.copy_from_host(jaccx::lbm::vel_y.data());
  auto f = df.span();
  auto f1 = df1.span();
  auto f2 = df2.span();
  auto w = dw.span();
  auto cx = dcx.span();
  auto cy = dcy.span();

  const auto step = [&] {
    if (a.be == jacc::backend::cpu_rome) {
      jaccx::sim::cpu_region_config cfg;
      cfg.name = fused ? "lbm.fused" : "lbm.paper";
      cfg.flops_per_index = jaccx::lbm::site_flops;
      jaccx::sim::cpu_parallel_range_2d(
          dev, cfg, edge, edge, [&](index_t inner, index_t outer) {
            if (fused) {
              jaccx::lbm::site_update_fused(outer, inner, f1, f2, 0.8, w, cx,
                                            cy, edge);
            } else {
              jaccx::lbm::site_update(outer, inner, f, f1, f2, 0.8, w, cx,
                                      cy, edge);
            }
          });
      return;
    }
    jaccx::sim::launch_config cfg;
    const std::int64_t tile = 16;
    cfg.block = jaccx::sim::dim3{tile, tile};
    cfg.grid = jaccx::sim::dim3{jaccx::sim::ceil_div(edge, tile),
                                jaccx::sim::ceil_div(edge, tile)};
    cfg.name = fused ? "lbm.fused" : "lbm.paper";
    cfg.flops_per_index = jaccx::lbm::site_flops;
    jaccx::sim::launch(dev, cfg, [&](jaccx::sim::kernel_ctx& ctx) {
      const index_t y = ctx.global_x();
      const index_t x = ctx.global_y();
      if (x < edge && y < edge) {
        if (fused) {
          jaccx::lbm::site_update_fused(x, y, f1, f2, 0.8, w, cx, cy, edge);
        } else {
          jaccx::lbm::site_update(x, y, f, f1, f2, 0.8, w, cx, cy, edge);
        }
      }
    });
  };
  return timed_us(a, step);
}

void register_all() {
  for (const auto& a : all_archs) {
    for (bool fused : {false, true}) {
      for (index_t edge : {index_t{128}, index_t{512}}) {
        const std::string name = std::string("abl_lbm_fusion/") + a.name +
                                 "/" + (fused ? "fused" : "paper_fig10") +
                                 "/" + std::to_string(edge) + "x" +
                                 std::to_string(edge);
        benchmark::RegisterBenchmark(
            name.c_str(), [a, fused, edge](benchmark::State& st) {
              double us = 0.0;
              for (auto _ : st) {
                us = lbm_variant_us(a, fused, edge);
                st.SetIterationTime(us * 1e-6);
              }
              st.counters["sim_us"] = us;
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== LBM formulation ablation: Fig. 10 scratch lattice vs "
            "register fusion ===");
  for (const auto& a : all_archs) {
    const double paper = lbm_variant_us(a, false, 512);
    const double fused = lbm_variant_us(a, true, 512);
    std::printf("%-8s 512x512: paper %9.1f us, fused %9.1f us -> fusion "
                "saves %.1f%%\n",
                a.name, paper, fused, (1.0 - fused / paper) * 100.0);
  }
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
