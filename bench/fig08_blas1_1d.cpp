// Fig. 8 reproduction: 1D AXPY and DOT time versus array size on the four
// architectures, device-specific model vs JACC model.
//
// The paper's figure plots time (log scale) against vector size for eight
// series per operation (4 architectures x {device-specific, JACC}).  Each
// google-benchmark row below is one point of one series; the trailing
// summary prints the in-text claims of Sec. V-A1 (AXPY GPU ~70x CPU at
// large sizes; DOT small arrays ~2x faster on CPU than GPU).
#include <cstdio>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;

constexpr index_t sizes[] = {1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22};

void bench_point(benchmark::State& state, arch a, bool via_jacc, bool is_dot,
                 index_t n) {
  double us = 0.0;
  for (auto _ : state) {
    us = blas1_1d_us(a, via_jacc, is_dot, n);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}

void register_all() {
  for (const auto& a : all_archs) {
    for (bool is_dot : {false, true}) {
      for (bool via_jacc : {false, true}) {
        for (index_t n : sizes) {
          const std::string name =
              std::string("fig08/") + (is_dot ? "dot" : "axpy") + "/" +
              a.name + "/" + (via_jacc ? "jacc" : "native") + "/" +
              std::to_string(n);
          benchmark::RegisterBenchmark(name.c_str(), [a, via_jacc, is_dot, n](benchmark::State& st) {
                bench_point(st, a, via_jacc, is_dot, n);
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== Fig. 8 paper-parity summary (Sec. V-A1) ===");
  const index_t big = 1 << 22;
  const index_t small = 1 << 12;
  const double cpu_axpy = blas1_1d_us(all_archs[0], true, false, big);
  const double mi100_axpy = blas1_1d_us(all_archs[1], true, false, big);
  std::printf("JACC AXPY n=%lld: rome64 %.1f us, mi100 %.1f us -> GPU "
              "speedup %.1fx (paper: ~70x)\n",
              static_cast<long long>(big), cpu_axpy, mi100_axpy,
              cpu_axpy / mi100_axpy);
  const double cpu_dot = blas1_1d_us(all_archs[0], true, true, small);
  const double mi100_dot = blas1_1d_us(all_archs[1], true, true, small);
  std::printf("JACC DOT  n=%lld: rome64 %.1f us, mi100 %.1f us -> CPU "
              "advantage %.1fx (paper: ~2x)\n",
              static_cast<long long>(small), cpu_dot, mi100_dot,
              mi100_dot / cpu_dot);
  for (const auto& a : all_archs) {
    const double native_us = blas1_1d_us(a, false, false, big);
    const double jacc_us = blas1_1d_us(a, true, false, big);
    std::printf("AXPY n=%lld %-8s: native %10.1f us, JACC %10.1f us, "
                "overhead %+5.1f%% (paper: negligible at large sizes)\n",
                static_cast<long long>(big), a.name, native_us, jacc_us,
                (jacc_us / native_us - 1.0) * 100.0);
  }
  for (const auto& a : all_archs) {
    const double native_us = blas1_1d_us(a, false, true, big);
    const double jacc_us = blas1_1d_us(a, true, true, big);
    std::printf("DOT  n=%lld %-8s: native %10.1f us, JACC %10.1f us, "
                "overhead %+5.1f%% (paper: ~35%% on max1550, else small)\n",
                static_cast<long long>(big), a.name, native_us, jacc_us,
                (jacc_us / native_us - 1.0) * 100.0);
  }
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("fig08_blas1_1d");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
