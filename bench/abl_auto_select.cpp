// Ablation: sKokkos-style transparent device selection (authors' companion
// work, paper ref. [20]).  For DOT across sizes on an MI100 node, compare
// always-CPU, always-GPU, and the auto selector: auto must track the lower
// envelope of the two fixed policies through the crossover the paper
// describes in Sec. V-A1.
#include <cstdio>

#include "core/auto_backend.hpp"
#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;

constexpr index_t sizes[] = {1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18,
                             1 << 20, 1 << 22};

const arch& rome() { return all_archs[0]; }
const arch& mi100() { return all_archs[1]; }

double policy_dot_us(int policy, index_t n) {
  jacc::workload w{.indices = n, .bytes_per_index = 16.0,
                   .flops_per_index = 2.0, .is_reduce = true};
  switch (policy) {
  case 0: return blas1_1d_us(rome(), true, true, n);  // always CPU
  case 1: return blas1_1d_us(mi100(), true, true, n); // always GPU
  default: {
    const jacc::backend pick =
        jacc::auto_select_node(jacc::backend::hip_mi100, w);
    return blas1_1d_us(pick == jacc::backend::cpu_rome ? rome() : mi100(),
                       true, true, n);
  }
  }
}

constexpr const char* policy_names[] = {"always_cpu", "always_gpu", "auto"};

void register_all() {
  for (int policy = 0; policy < 3; ++policy) {
    for (index_t n : sizes) {
      const std::string name = std::string("abl_auto/dot/") +
                               policy_names[policy] + "/" +
                               std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(), [policy, n](benchmark::State& st) {
            double us = 0.0;
            for (auto _ : st) {
              us = policy_dot_us(policy, n);
              st.SetIterationTime(us * 1e-6);
            }
            st.counters["sim_us"] = us;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

void print_summary() {
  std::puts("\n=== transparent device selection summary (sKokkos, ref [20]) "
            "===");
  double auto_total = 0.0;
  double best_total = 0.0;
  double cpu_total = 0.0;
  double gpu_total = 0.0;
  for (index_t n : sizes) {
    const double cpu = policy_dot_us(0, n);
    const double gpu = policy_dot_us(1, n);
    const double aut = policy_dot_us(2, n);
    cpu_total += cpu;
    gpu_total += gpu;
    auto_total += aut;
    best_total += std::min(cpu, gpu);
    std::printf("DOT n=%-9lld cpu %9.1f us, mi100 %9.1f us, auto %9.1f us "
                "(%s)\n",
                static_cast<long long>(n), cpu, gpu, aut,
                aut <= std::min(cpu, gpu) * 1.001 ? "optimal" : "suboptimal");
  }
  std::printf("sweep totals: always_cpu %.0f us, always_gpu %.0f us, "
              "auto %.0f us, oracle %.0f us (auto within %.1f%% of oracle)\n",
              cpu_total, gpu_total, auto_total, best_total,
              (auto_total / best_total - 1.0) * 100.0);
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
