// Ablation: static vs dynamic scheduling under load imbalance.
//
// The threads backend's default static decomposition hands every worker the
// same number of indices; when per-index cost varies (CSR SpMV rows of
// uneven length, LBM boundary columns), the region finishes when the
// unluckiest worker does.  JACC_SCHEDULE=dynamic[,grain] lets workers claim
// grain-sized chunks off an atomic cursor instead.  This bench quantifies
// the difference on the canonical adversarial case: triangular work,
// work(i) proportional to i, so a static split gives the last worker ~2x
// the mean load.
//
// Two variants:
//   compute   per-index FMA chain of length i (CPU-bound).  Shows the full
//             static-vs-dynamic gap when workers have their own cores; on a
//             machine with fewer cores than pool width the OS timeshares
//             whatever we hand it and the schedules converge.
//   blocking  per-index timed wait proportional to i (latency-bound, e.g.
//             I/O or a remote fetch inside the kernel).  Overlap is real
//             even on one core, so the scheduling win shows anywhere.
//
// Run with JACC_NUM_THREADS >= 2; each row reports the pool width as a
// counter.  grain=0 rows are static; others dynamic with that grain.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "core/jacc.hpp"

namespace {

using jacc::backend;
using jacc::index_t;

double fma_chain(index_t len) {
  double acc = 1.0;
  for (index_t k = 0; k < len; ++k) {
    acc = acc * 1.0000001 + 0.5;
  }
  return acc;
}

class schedule_guard {
public:
  explicit schedule_guard(jaccx::pool::schedule s)
      : saved_(jaccx::pool::default_pool().current_schedule()) {
    jaccx::pool::default_pool().set_schedule(s);
  }
  ~schedule_guard() { jaccx::pool::default_pool().set_schedule(saved_); }

private:
  jaccx::pool::schedule saved_;
};

jaccx::pool::schedule schedule_from_arg(std::int64_t grain) {
  if (grain == 0) {
    return {jaccx::pool::schedule_kind::static_chunks, 0};
  }
  return {jaccx::pool::schedule_kind::dynamic_chunks,
          static_cast<index_t>(grain)};
}

// arg0: grain (0 = static); fixed n = 2048 triangular FMA chains.
void imbalance_compute(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const schedule_guard guard(schedule_from_arg(state.range(0)));
  const index_t n = 2048;
  for (auto _ : state) {
    jacc::parallel_for(n, [](index_t i) {
      benchmark::DoNotOptimize(fma_chain(i));
    });
    benchmark::ClobberMemory();
  }
  state.counters["threads"] =
      static_cast<double>(jaccx::pool::default_pool().size());
}
BENCHMARK(imbalance_compute)->Arg(0)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// arg0: grain (0 = static); n = 64 indices, index i waits 16*i
// microseconds.  The scale keeps the triangular term well above Linux
// timer slack and wake/reschedule cost (~50 us per sleep), so the wall
// clock reflects scheduling, not syscall noise: the serial sum is ~32 ms,
// a static 4-way split bottlenecks on the last quarter (~14 ms), and a
// balanced dynamic split approaches ~8 ms.
void imbalance_blocking(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const schedule_guard guard(schedule_from_arg(state.range(0)));
  const index_t n = 64;
  for (auto _ : state) {
    jacc::parallel_for(n, [](index_t i) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(16 * i);
      std::this_thread::sleep_until(until);
    });
  }
  state.counters["threads"] =
      static_cast<double>(jaccx::pool::default_pool().size());
}
BENCHMARK(imbalance_blocking)->Arg(0)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
