// Ablation: real (wall-clock) host-side cost of the JACC portable layer.
//
// The paper's central overhead question (Sec. V) is whether the high-level
// front end costs anything beyond the device-specific code.  The simulated
// backends answer it in model time; this bench answers it for the two REAL
// backends by timing, at several sizes:
//
//   raw_serial    hand-written sequential loop
//   jacc_serial   the same kernel through jacc::parallel_for (serial)
//   raw_threads   hand-written pool code (blas::threads_axpy)
//   jacc_threads  jacc::parallel_for on the threads backend
//
// plus the reductions.  The delta between raw and jacc rows IS the
// dispatch + instrumentation overhead of this implementation.
//
// graph_serial / graph_threads rows replay a jacc::graph of kGraphNodes
// pre-captured axpy launches: the same kernels with the whole front-end
// dispatch hoisted into capture.  JACC_QUEUES is pinned to 1 so replay is
// the inline path — these rows measure dispatch cost, not lane overlap.
// The summary at the end times base (bare kernel loop), eager, and replay
// per-launch and checks the acceptance bar: replay's per-launch host
// overhead >= 5x lower than eager at n = 1<<10 on serial and threads.
// Results land in BENCH_graph_replay.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "blas/kernels.hpp"
#include "blas/native_cpu.hpp"
#include "core/jacc.hpp"
#include "fig_common.hpp"

namespace {

using jacc::backend;
using jacc::index_t;

constexpr int kGraphNodes = 16;

/// Captures kGraphNodes identical axpy launches (same hints as
/// blas::jacc_axpy) into one graph on `q`.
jacc::graph make_axpy_graph(jacc::queue& q, index_t n, jacc::array<double>& x,
                            const jacc::array<double>& y) {
  q.begin_capture();
  for (int k = 0; k < kGraphNodes; ++k) {
    jacc::parallel_for(q,
                       jacc::hints{.name = "jacc.axpy",
                                   .flops_per_index = 2.0,
                                   .bytes_per_index = 24.0},
                       n, jaccx::blas::axpy, 2.0, x, y);
  }
  return q.end_capture();
}

void raw_serial_axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  for (auto _ : state) {
    double* xp = x.data();
    const double* yp = y.data();
    for (index_t i = 0; i < n; ++i) {
      xp[i] += 2.0 * yp[i];
    }
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(raw_serial_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_serial_axpy(benchmark::State& state) {
  jacc::scoped_backend sb(backend::serial);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    jaccx::blas::jacc_axpy(n, 2.0, x, y);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(jacc_serial_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void raw_threads_axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  for (auto _ : state) {
    jaccx::blas::threads_axpy(n, 2.0, x.data(), y.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(raw_threads_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_threads_axpy(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    jaccx::blas::jacc_axpy(n, 2.0, x, y);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(jacc_threads_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void graph_serial_axpy(benchmark::State& state) {
  jacc::scoped_backend sb(backend::serial);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  jacc::queue q("abl.graph.serial");
  jacc::graph g = make_axpy_graph(q, n, x, y);
  for (auto _ : state) {
    g.launch(q);
    q.synchronize();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kGraphNodes * n * 24);
  state.counters["launches_per_iter"] = kGraphNodes;
}
BENCHMARK(graph_serial_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void graph_threads_axpy(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  jacc::queue q("abl.graph.threads");
  jacc::graph g = make_axpy_graph(q, n, x, y);
  for (auto _ : state) {
    g.launch(q);
    q.synchronize();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kGraphNodes * n * 24);
  state.counters["launches_per_iter"] = kGraphNodes;
}
BENCHMARK(graph_threads_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void raw_serial_dot(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  for (auto _ : state) {
    double acc = 0.0;
    const double* xp = x.data();
    const double* yp = y.data();
    for (index_t i = 0; i < n; ++i) {
      acc += xp[i] * yp[i];
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(raw_serial_dot)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_serial_dot(benchmark::State& state) {
  jacc::scoped_backend sb(backend::serial);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccx::blas::jacc_dot(n, x, y));
  }
}
BENCHMARK(jacc_serial_dot)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_threads_dot(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccx::blas::jacc_dot(n, x, y));
  }
}
BENCHMARK(jacc_threads_dot)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

// Pure launch cost: an empty kernel at n = 1 isolates the fork/join and
// dispatch machinery with no useful work to hide it.
void jacc_threads_empty_launch(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  for (auto _ : state) {
    jacc::parallel_for(1, [](index_t) {});
  }
}
BENCHMARK(jacc_threads_empty_launch);

void raw_threads_empty_launch(benchmark::State& state) {
  for (auto _ : state) {
    jaccx::pool::default_pool().parallel_for_index(1, [](index_t) {});
  }
}
BENCHMARK(raw_threads_empty_launch);

// --- acceptance summary -----------------------------------------------------
//
// Per-launch host overhead, measured with a NO-OP kernel at n = 1<<10: the
// kernel loop compiles to nothing, so whatever time remains is the front
// end's per-launch work (a real kernel's loop time varies by inlining
// context and would swamp the sub-microsecond dispatch delta).  base is the
// bare substrate (an empty loop on serial, one pool fork/join on threads)
// that every path must pay; eager is kGraphNodes queued launches plus one
// synchronize; replay is one launch of the pre-captured kGraphNodes-node
// graph plus one synchronize — the exact calls the graph replaces.  Each
// sample batch-averages `reps` launches; the minimum over `samples`
// batches rejects scheduler noise.

template <class Body>
double min_us_per_rep(int samples, int reps, Body&& body) {
  double best = 1e300;
  for (int s = 0; s < samples; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      body();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(reps);
    best = std::min(best, us);
  }
  return best;
}

struct overhead_row {
  double base_us, eager_us, graph_us, ratio;
  bool pass;
};

overhead_row measure_overhead(backend b, index_t n, int samples, int reps) {
  jacc::scoped_backend sb(b);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));

  // No-op kernel with the axpy argument shape, so capture-policy and
  // argument-forwarding costs are represented but the loop itself is free.
  const auto kern = [](index_t, double, jacc::array<double>&,
                       const jacc::array<double>&) {};
  const jacc::hints h{.name = "jacc.noop", .flops_per_index = 2.0,
                      .bytes_per_index = 24.0};

  const double base_us =
      b == backend::serial
          ? min_us_per_rep(samples, reps,
                           [&] {
                             for (index_t i = 0; i < n; ++i) {
                               kern(i, 2.0, x, y);
                             }
                             benchmark::ClobberMemory();
                           })
          : min_us_per_rep(samples, reps, [&] {
              jaccx::pool::default_pool().parallel_for_index(
                  n, [&](index_t i) { kern(i, 2.0, x, y); });
              benchmark::ClobberMemory();
            });

  // JACC_QUEUES is pinned to 1 (see main), so every queued launch and
  // every replay below completes inline — no synchronize needed inside the
  // timed bodies, whose constant cost would otherwise blur the ratio.
  jacc::queue q("abl.graph.summary");
  const int batch_reps = std::max(1, reps / kGraphNodes);
  const double eager_us = min_us_per_rep(samples, batch_reps, [&] {
                            for (int k = 0; k < kGraphNodes; ++k) {
                              jacc::parallel_for(q, h, n, kern, 2.0, x, y);
                            }
                            benchmark::ClobberMemory();
                          }) /
                          kGraphNodes;

  q.begin_capture();
  for (int k = 0; k < kGraphNodes; ++k) {
    jacc::parallel_for(q, h, n, kern, 2.0, x, y);
  }
  jacc::graph g = q.end_capture();
  const double graph_us = min_us_per_rep(samples, batch_reps, [&] {
                            g.launch(q);
                            benchmark::ClobberMemory();
                          }) /
                          kGraphNodes;
  q.synchronize();

  const double over_eager = eager_us - base_us;
  const double over_graph = graph_us - base_us;
  overhead_row row{base_us, eager_us, graph_us, 0.0, false};
  if (over_graph <= 0.0) {
    // Replay is indistinguishable from the bare loop at this size.
    row.ratio = 1e9;
    row.pass = over_eager > 0.0;
  } else {
    row.ratio = over_eager / over_graph;
    row.pass = row.ratio >= 5.0;
  }
  return row;
}

void print_summary() {
  std::puts("\n=== graph replay dispatch overhead (per launch, n = 1024) ===");
  bool all_pass = true;
  for (backend b : {backend::serial, backend::threads}) {
    const int reps = b == backend::serial ? 16'000 : 4'000;
    const overhead_row row = measure_overhead(b, 1 << 10, 40, reps);
    const double over_eager = row.eager_us - row.base_us;
    const double over_graph = row.graph_us - row.base_us;
    std::printf("%-8s base %8.3f us  eager %8.3f us (+%.3f)  "
                "replay %8.3f us (+%.3f)  overhead ratio %.1fx %s\n",
                std::string(jacc::to_string(b)).c_str(), row.base_us,
                row.eager_us, over_eager,
                row.graph_us, over_graph, row.ratio,
                row.pass ? "PASS" : "FAIL");
    all_pass = all_pass && row.pass;
  }
  std::printf("acceptance: eager/replay per-launch overhead >= 5.0x on both "
              "real back ends: %s\n",
              all_pass ? "PASS" : "FAIL");
}

} // namespace

int main(int argc, char** argv) {
  // Pin replay to the inline path: these rows measure dispatch cost, not
  // lane overlap (abl_queue_overlap covers that).
  ::setenv("JACC_QUEUES", "1", 1);
  jacc::initialize();
  // Summary first, with the profiler off, so the acceptance numbers see the
  // production (prof-gated) hot path.
  print_summary();
  const jaccx::bench::bench_session session("graph_replay");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
