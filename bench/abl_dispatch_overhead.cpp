// Ablation: real (wall-clock) host-side cost of the JACC portable layer.
//
// The paper's central overhead question (Sec. V) is whether the high-level
// front end costs anything beyond the device-specific code.  The simulated
// backends answer it in model time; this bench answers it for the two REAL
// backends by timing, at several sizes:
//
//   raw_serial    hand-written sequential loop
//   jacc_serial   the same kernel through jacc::parallel_for (serial)
//   raw_threads   hand-written pool code (blas::threads_axpy)
//   jacc_threads  jacc::parallel_for on the threads backend
//
// plus the reductions.  The delta between raw and jacc rows IS the
// dispatch + instrumentation overhead of this implementation.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "blas/jacc_blas.hpp"
#include "blas/native_cpu.hpp"
#include "core/jacc.hpp"

namespace {

using jacc::backend;
using jacc::index_t;

void raw_serial_axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  for (auto _ : state) {
    double* xp = x.data();
    const double* yp = y.data();
    for (index_t i = 0; i < n; ++i) {
      xp[i] += 2.0 * yp[i];
    }
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(raw_serial_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_serial_axpy(benchmark::State& state) {
  jacc::scoped_backend sb(backend::serial);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    jaccx::blas::jacc_axpy(n, 2.0, x, y);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(jacc_serial_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void raw_threads_axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  for (auto _ : state) {
    jaccx::blas::threads_axpy(n, 2.0, x.data(), y.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(raw_threads_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_threads_axpy(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    jaccx::blas::jacc_axpy(n, 2.0, x, y);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(jacc_threads_axpy)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void raw_serial_dot(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 2.0);
  for (auto _ : state) {
    double acc = 0.0;
    const double* xp = x.data();
    const double* yp = y.data();
    for (index_t i = 0; i < n; ++i) {
      acc += xp[i] * yp[i];
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(raw_serial_dot)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_serial_dot(benchmark::State& state) {
  jacc::scoped_backend sb(backend::serial);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccx::blas::jacc_dot(n, x, y));
  }
}
BENCHMARK(jacc_serial_dot)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

void jacc_threads_dot(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  const index_t n = state.range(0);
  jacc::array<double> x(std::vector<double>(static_cast<std::size_t>(n), 1.0));
  jacc::array<double> y(std::vector<double>(static_cast<std::size_t>(n), 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccx::blas::jacc_dot(n, x, y));
  }
}
BENCHMARK(jacc_threads_dot)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

// Pure launch cost: an empty kernel at n = 1 isolates the fork/join and
// dispatch machinery with no useful work to hide it.
void jacc_threads_empty_launch(benchmark::State& state) {
  jacc::scoped_backend sb(backend::threads);
  for (auto _ : state) {
    jacc::parallel_for(1, [](index_t) {});
  }
}
BENCHMARK(jacc_threads_empty_launch);

void raw_threads_empty_launch(benchmark::State& state) {
  for (auto _ : state) {
    jaccx::pool::default_pool().parallel_for_index(1, [](index_t) {});
  }
}
BENCHMARK(raw_threads_empty_launch);

} // namespace

BENCHMARK_MAIN();
