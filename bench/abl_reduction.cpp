// Ablation for the Sec. IV design choice: how reductions are structured on
// GPUs.  Three strategies for the same DOT on each simulated GPU:
//
//   native_fused   the paper's Fig. 3 hand-written two-kernel shared-memory
//                  tree (512-thread blocks) + scalar D2H
//   jacc_generic   JACC's generic parallel_reduce (256-thread blocks,
//                  allocation per call) + scalar D2H
//   naive_d2h      an elementwise product kernel + full-array D2H + host
//                  sum: what a user writes without a reduction construct
//   atomic_single  one kernel; every lane atomic-adds its product into a
//                  single device scalar (charged per-atomic serialization)
//
// The naive strategy shows why the two-kernel scheme exists (the full-array
// transfer dwarfs everything at size); the atomic strategy shows what the
// shared-memory tree buys over device-wide atomics.
#include <cstdio>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::sim::device_buffer;

constexpr index_t sizes[] = {1 << 12, 1 << 16, 1 << 20};

template <class Api>
double naive_d2h_dot_us(const arch& a, index_t n) {
  auto& dev = dev_of(a);
  const std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  device_buffer<double> dx(dev, n), dy(dev, n), dprod(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  auto sx = dx.span();
  auto sy = dy.span();
  auto sp = dprod.span();
  std::vector<double> out(static_cast<std::size_t>(n));
  return timed_us(a, [&] {
    const std::int64_t maxt = Api::max_threads();
    const std::int64_t threads = n < maxt ? n : maxt;
    Api::launch1d(
        jaccx::sim::ceil_div(n, threads), threads,
        [=](jaccx::sim::kernel_ctx& ctx) {
          const index_t i = ctx.global_x();
          if (i < n) {
            sp[i] = static_cast<double>(sx[i]) * static_cast<double>(sy[i]);
          }
        },
        "naive.prod", 1.0);
    dprod.copy_to_host(out.data());
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) {
      acc += out[static_cast<std::size_t>(i)];
    }
    benchmark::DoNotOptimize(acc);
  });
}

template <class Api>
double atomic_dot_us(const arch& a, index_t n) {
  auto& dev = dev_of(a);
  const std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  device_buffer<double> dx(dev, n), dy(dev, n), dres(dev, 1);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  auto sx = dx.span();
  auto sy = dy.span();
  double* res = dres.data();
  double out = 0.0;
  return timed_us(a, [&] {
    dres.fill_untracked(0.0);
    const std::int64_t maxt = Api::max_threads();
    const std::int64_t threads = n < maxt ? n : maxt;
    Api::launch_shared(
        jaccx::sim::ceil_div(n, threads), threads, 0,
        [=](jaccx::sim::kernel_ctx& ctx) {
          const index_t i = ctx.global_x();
          if (i < n) {
            ctx.atomic_add(res, static_cast<double>(sx[i]) *
                                    static_cast<double>(sy[i]));
          }
        },
        "atomic.dot", /*is_reduce=*/true, 1.0);
    dres.copy_to_host(&out);
    benchmark::DoNotOptimize(out);
  });
}

template <class Fn>
double vendor_dispatch(const arch& a, Fn&& fn) {
  if (a.be == jacc::backend::cuda_a100) {
    return fn.template operator()<jaccx::vendor::cuda_api>();
  }
  if (a.be == jacc::backend::hip_mi100) {
    return fn.template operator()<jaccx::vendor::hip_api>();
  }
  return fn.template operator()<jaccx::vendor::oneapi_api>();
}

double strategy_us(const arch& a, int strategy, index_t n) {
  switch (strategy) {
  case 0: return blas1_1d_us(a, false, true, n); // native fused (Fig. 3)
  case 1: return blas1_1d_us(a, true, true, n);  // jacc generic
  case 2:
    return vendor_dispatch(a, [&]<class Api>() {
      return naive_d2h_dot_us<Api>(a, n);
    });
  default:
    return vendor_dispatch(a, [&]<class Api>() {
      return atomic_dot_us<Api>(a, n);
    });
  }
}

constexpr const char* strategy_names[] = {"native_fused", "jacc_generic",
                                          "naive_d2h", "atomic_single"};

void register_all() {
  for (std::size_t k = 1; k < 4; ++k) { // the three GPUs
    const arch a = all_archs[k];
    for (int s = 0; s < 4; ++s) {
      for (index_t n : sizes) {
        const std::string name = std::string("abl_reduce/") + a.name + "/" +
                                 strategy_names[s] + "/" + std::to_string(n);
        benchmark::RegisterBenchmark(name.c_str(), [a, s, n](benchmark::State& st) {
              double us = 0.0;
              for (auto _ : st) {
                us = strategy_us(a, s, n);
                st.SetIterationTime(us * 1e-6);
              }
              st.counters["sim_us"] = us;
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== Sec. IV ablation summary: reduction structure ===");
  const index_t n = 1 << 20;
  for (std::size_t k = 1; k < 4; ++k) {
    const arch a = all_archs[k];
    const double fused = strategy_us(a, 0, n);
    const double generic = strategy_us(a, 1, n);
    const double naive = strategy_us(a, 2, n);
    const double atomic = strategy_us(a, 3, n);
    std::printf("%-8s DOT n=%lld: fused %9.1f us, jacc %9.1f us "
                "(%+5.1f%%), naive+D2H %9.1f us (%.0fx), atomic %9.1f us "
                "(%.1fx)\n",
                a.name, static_cast<long long>(n), fused, generic,
                (generic / fused - 1.0) * 100.0, naive, naive / fused,
                atomic, atomic / fused);
  }
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
