// Ablation for Sec. III-A: what the KernelAbstractions-style manual group
// size costs when chosen badly, versus JACC's automatic granularity.
//
// KA (paper Fig. 4) makes the user pick a group size per backend kind; JACC
// derives it from the device (Fig. 6/7).  This bench sweeps the KA group
// size for the same AXPY on a simulated GPU and the simulated Rome CPU and
// reports the JACC automatic choice alongside.
#include <cstdio>

#include "fig_common.hpp"
#include "ka/ka.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::sim::device_buffer;

constexpr index_t n = 1 << 20;
constexpr index_t groupsizes[] = {8, 32, 128, 256, 1024};

double ka_axpy_us(const arch& a, index_t groupsize) {
  auto& dev = dev_of(a);
  const std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  auto sx = dx.span();
  auto sy = dy.span();
  const auto be = jaccx::ka::get_backend(a.be);
  return timed_us(a, [&] {
    jaccx::ka::run(be, groupsize, n, [sx, sy](index_t i) {
      sx[i] += 2.0 * static_cast<double>(sy[i]);
    });
  });
}

void bench_ka(benchmark::State& state, arch a, index_t groupsize) {
  double us = 0.0;
  for (auto _ : state) {
    us = ka_axpy_us(a, groupsize);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}

void bench_jacc(benchmark::State& state, arch a) {
  double us = 0.0;
  for (auto _ : state) {
    us = blas1_1d_us(a, true, false, n);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}

void register_all() {
  for (const auto& a : {all_archs[0], all_archs[2]}) { // rome64 and a100
    for (index_t g : groupsizes) {
      const std::string name = std::string("abl_ka/") + a.name +
                               "/ka_groupsize_" + std::to_string(g);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [a, g](benchmark::State& st) {
                                     bench_ka(st, a, g);
                                   })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
    const std::string jname = std::string("abl_ka/") + a.name + "/jacc_auto";
    benchmark::RegisterBenchmark(jname.c_str(), [a](benchmark::State& st) {
      bench_jacc(st, a);
    })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
}

void print_summary() {
  std::puts("\n=== Sec. III-A ablation summary: granularity selection ===");
  for (const auto& a : {all_archs[0], all_archs[2]}) {
    double best = 1e300;
    double worst = 0.0;
    for (index_t g : groupsizes) {
      const double us = ka_axpy_us(a, g);
      best = std::min(best, us);
      worst = std::max(worst, us);
    }
    const double jacc_us = blas1_1d_us(a, true, false, n);
    std::printf("%-8s AXPY n=%lld: KA best %.1f us, KA worst %.1f us "
                "(%.1fx spread), JACC auto %.1f us (within %.0f%% of best)\n",
                a.name, static_cast<long long>(n), best, worst, worst / best,
                jacc_us, (jacc_us / best - 1.0) * 100.0);
  }
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
