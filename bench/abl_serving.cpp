// Acceptance bench for the multi-tenant serving scheduler
// (docs/SERVING.md): throughput and queue-wait percentiles versus tenant
// count on the a100 model and the threads back end, plus the
// memory-pressure admission scenario.
//
// Three scenarios:
//   1. sim scaling   — T tenants on 4 slots, per-tenant sim streams: the
//      simulated makespan must shrink with tenant count until the slots
//      saturate (deterministic: simulated time, not wall clock).
//   2. threads burst — 8 equal-weight tenants submit identical bursts; the
//      p99 queue-wait ratio between the luckiest and unluckiest tenant
//      bounds the scheduler's fairness error.
//   3. pressure      — a capped sim arena plus an admission budget: jobs
//      must be deferred and later admitted (never rejected or failed), and
//      the pool's trim-once-and-retry path must actually fire.
//
// Exits nonzero unless the bars hold:
//   - sim throughput at 4 tenants >= 2.0x the 1-tenant throughput, and
//     8 tenants sustain >= 0.9x the 4-tenant throughput (slot saturation)
//   - threads p99 queue-wait ratio across 8 equal-weight tenants <= 1.5x
//   - pressure run: deferred-then-admitted > 0, alloc retries > 0, no
//     failed or rejected jobs
// The bench_session writes BENCH_serving.json with a "serving" section
// (throughput + p50/p99 wait vs tenant count on both back ends).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "mem/pool.hpp"
#include "serve/serve.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::serve::options;
using jaccx::serve::scheduler;
using jaccx::serve::tenant;

constexpr int serve_slots = 4;
constexpr index_t sim_n = index_t{1} << 15;
constexpr double sim_fpi = 2'000.0; // enough flops to dominate dispatch

void bump(index_t i, jacc::array<double>& a) { a[i] = a[i] + 1.0; }

// --- scenario 1: simulated throughput scaling --------------------------------

struct sim_point {
  int tenants = 0;
  int jobs = 0; ///< total jobs across tenants
  double makespan_us = 0.0;
  double wait_p50_us = 0.0; ///< max over tenants
  double wait_p99_us = 0.0; ///< max over tenants
  double throughput() const { return jobs / makespan_us; } // jobs per sim-us
};

sim_point sim_scaling(int tenants, int jobs_per_tenant) {
  const jacc::scoped_backend sb(jacc::backend::cuda_a100);
  auto& dev = *jacc::backend_device(jacc::backend::cuda_a100);
  dev.tl().set_logging(false);

  sim_point out;
  out.tenants = tenants;
  out.jobs = tenants * jobs_per_tenant;
  {
    // One array per tenant, allocated before the clock reset so the run
    // times only the served kernels.
    std::vector<jacc::array<double>> data;
    data.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      data.emplace_back(
          std::vector<double>(static_cast<std::size_t>(sim_n), 0.0));
    }
    scheduler sched(options{.slots = serve_slots});
    std::vector<tenant> ts;
    for (int t = 0; t < tenants; ++t) {
      ts.push_back(sched.open_tenant("t" + std::to_string(t)));
    }
    dev.reset_clock();
    dev.cache().reset();
    const jacc::hints h{.name = "serve.work", .flops_per_index = sim_fpi};
    for (int j = 0; j < jobs_per_tenant; ++j) {
      for (int t = 0; t < tenants; ++t) {
        sched.submit(ts[static_cast<std::size_t>(t)], [&, t](jacc::queue& q) {
          jacc::parallel_for(q, h, sim_n, bump,
                             data[static_cast<std::size_t>(t)]);
        });
      }
    }
    sched.drain();
    // Per-tenant sim streams: now_us() is the max over the slot streams,
    // i.e. the simulated makespan of the whole batch.
    out.makespan_us = dev.tl().now_us();
    for (const auto& row : sched.stats().tenants) {
      out.wait_p50_us = std::max(out.wait_p50_us, row.wait_p50_us);
      out.wait_p99_us = std::max(out.wait_p99_us, row.wait_p99_us);
    }
  }
  dev.tl().set_logging(true);
  dev.reset_clock();
  return out;
}

// --- scenario 2: threads fairness burst --------------------------------------

struct fair_point {
  int tenants = 0;
  int jobs = 0;
  double wall_us = 0.0;
  double p99_min_us = 0.0; ///< best-off tenant
  double p99_max_us = 0.0; ///< worst-off tenant
  double wait_p50_us = 0.0;
  double ratio() const {
    return p99_min_us > 0.0 ? p99_max_us / p99_min_us : 1.0;
  }
  double throughput_per_s() const { return jobs / (wall_us * 1e-6); }
};

fair_point threads_burst(int tenants, int jobs_per_tenant) {
  const jacc::scoped_backend sb(jacc::backend::threads);
  fair_point out;
  out.tenants = tenants;
  out.jobs = tenants * jobs_per_tenant;
  scheduler sched; // slots/workers resolve from the lane pool
  std::vector<tenant> ts;
  for (int t = 0; t < tenants; ++t) {
    ts.push_back(sched.open_tenant("t" + std::to_string(t)));
  }
  std::vector<jacc::array<double>> data;
  data.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    data.emplace_back(std::vector<double>(4096, 0.0));
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int j = 0; j < jobs_per_tenant; ++j) {
    for (int t = 0; t < tenants; ++t) {
      sched.submit(ts[static_cast<std::size_t>(t)], [&, t](jacc::queue& q) {
        jacc::parallel_for(q, 4096, bump, data[static_cast<std::size_t>(t)]);
        q.synchronize();
      });
    }
  }
  sched.drain();
  out.wall_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  bool first = true;
  for (const auto& row : sched.stats().tenants) {
    out.p99_min_us = first ? row.wait_p99_us
                           : std::min(out.p99_min_us, row.wait_p99_us);
    out.p99_max_us = std::max(out.p99_max_us, row.wait_p99_us);
    out.wait_p50_us = std::max(out.wait_p50_us, row.wait_p50_us);
    first = false;
  }
  return out;
}

// --- scenario 3: admission under memory pressure -----------------------------

struct pressure_result {
  std::uint64_t deferred = 0;
  std::uint64_t deferred_admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t alloc_retries_delta = 0;
};

pressure_result pressure_run() {
  const jacc::scoped_backend sb(jacc::backend::cuda_a100);
  const jaccx::mem::scoped_mode pooled(jaccx::mem::pool_mode::bucket);
  jaccx::mem::drain();
  auto& dev = jaccx::sim::get_device("a100");
  dev.set_arena_limit(std::size_t{2} << 20); // 2 MiB device arena
  const std::uint64_t retries_before = jaccx::mem::alloc_retries();
  const std::uint64_t baseline =
      jaccx::mem::live_bytes() + jaccx::mem::cached_bytes();

  pressure_result out;
  {
    scheduler sched(options{
        .slots = 2,
        .mem_budget_bytes = baseline + (std::uint64_t{5} << 19)}); // +2.5 MiB
    auto a = sched.open_tenant("alice");
    auto b = sched.open_tenant("bob");
    // Jobs cycle through 512 KiB / 1 MiB / 2 MiB device footprints: the
    // cached buckets pile up past the 2 MiB arena, so a later allocation
    // throws bad_alloc and the pool must trim-and-retry; the 1.5 MiB hints
    // against the 2.5 MiB budget force admission deferrals on top.
    constexpr std::uint64_t hint = std::uint64_t{3} << 19;
    for (int j = 0; j < 6; ++j) {
      const index_t elems =
          static_cast<index_t>(((j % 3) + 1) * (std::size_t{1} << 16));
      const auto body = [elems](jacc::queue& q) {
        jacc::array<double> v(
            std::vector<double>(static_cast<std::size_t>(elems), 0.0));
        jacc::parallel_for(q, elems, bump, v);
        q.synchronize();
      };
      sched.submit(a, body, hint);
      sched.submit(b, body, hint);
    }
    sched.drain();
    for (const auto& row : sched.stats().tenants) {
      out.deferred += row.deferred;
      out.deferred_admitted += row.deferred_admitted;
      out.completed += row.completed;
      out.failed += row.failed;
      out.rejected += row.rejected;
    }
  }
  out.alloc_retries_delta = jaccx::mem::alloc_retries() - retries_before;
  dev.set_arena_limit(0);
  jaccx::mem::drain();
  return out;
}

// --- registration / acceptance -----------------------------------------------

void register_all() {
  for (int tenants : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("abl_serving/sim_scaling/tenants_" + std::to_string(tenants))
            .c_str(),
        [tenants](benchmark::State& s) {
          double us = 0.0;
          for (auto _ : s) {
            us = sim_scaling(tenants, 8).makespan_us;
            s.SetIterationTime(us * 1e-6);
          }
          s.counters["sim_us"] = us;
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
}

bool check_ge(const char* what, double value, double bar) {
  const bool ok = value >= bar;
  std::printf("acceptance: %-36s %8.2f (bar: >= %.2f) %s\n", what, value,
              bar, ok ? "PASS" : "FAIL");
  return ok;
}

bool check_le(const char* what, double value, double bar) {
  const bool ok = value <= bar;
  std::printf("acceptance: %-36s %8.2f (bar: <= %.2f) %s\n", what, value,
              bar, ok ? "PASS" : "FAIL");
  return ok;
}

int acceptance(jaccx::bench::bench_session& session) {
  std::puts("\n=== serving acceptance (docs/SERVING.md) ===");

  std::vector<sim_point> sim;
  for (const int t : {1, 2, 4, 8}) {
    sim.push_back(sim_scaling(t, 8));
    const sim_point& p = sim.back();
    std::printf("sim     T=%d: %3d jobs, makespan %9.1f us, "
                "wait p50 %8.1f p99 %8.1f us\n",
                p.tenants, p.jobs, p.makespan_us, p.wait_p50_us,
                p.wait_p99_us);
  }

  std::vector<fair_point> fair;
  for (const int t : {2, 4, 8}) {
    fair.push_back(threads_burst(t, 24));
    const fair_point& p = fair.back();
    std::printf("threads T=%d: %3d jobs, wall %9.1f us, p99 min %8.1f "
                "max %8.1f us (ratio %.2f)\n",
                p.tenants, p.jobs, p.wall_us, p.p99_min_us, p.p99_max_us,
                p.ratio());
  }

  const pressure_result pr = pressure_run();
  std::printf("pressure: deferred %llu (admitted %llu), completed %llu, "
              "failed %llu, rejected %llu, alloc retries %llu\n",
              static_cast<unsigned long long>(pr.deferred),
              static_cast<unsigned long long>(pr.deferred_admitted),
              static_cast<unsigned long long>(pr.completed),
              static_cast<unsigned long long>(pr.failed),
              static_cast<unsigned long long>(pr.rejected),
              static_cast<unsigned long long>(pr.alloc_retries_delta));

  char buf[256];
  std::string json = "{\n    \"sim_scaling\": [";
  bool first = true;
  for (const sim_point& p : sim) {
    std::snprintf(buf, sizeof buf,
                  "%s\n      {\"tenants\": %d, \"jobs\": %d, "
                  "\"makespan_us\": %.1f, \"jobs_per_ms\": %.3f, "
                  "\"wait_p50_us\": %.1f, \"wait_p99_us\": %.1f}",
                  first ? "" : ",", p.tenants, p.jobs, p.makespan_us,
                  p.throughput() * 1e3, p.wait_p50_us, p.wait_p99_us);
    json += buf;
    first = false;
  }
  json += "\n    ],\n    \"threads_burst\": [";
  first = true;
  for (const fair_point& p : fair) {
    std::snprintf(buf, sizeof buf,
                  "%s\n      {\"tenants\": %d, \"jobs\": %d, "
                  "\"wall_us\": %.1f, \"jobs_per_s\": %.1f, "
                  "\"wait_p50_us\": %.1f, \"p99_min_us\": %.1f, "
                  "\"p99_max_us\": %.1f, \"p99_ratio\": %.3f}",
                  first ? "" : ",", p.tenants, p.jobs, p.wall_us,
                  p.throughput_per_s(), p.wait_p50_us, p.p99_min_us,
                  p.p99_max_us, p.ratio());
    json += buf;
    first = false;
  }
  std::snprintf(buf, sizeof buf,
                "\n    ],\n    \"pressure\": {\"deferred\": %llu, "
                "\"deferred_admitted\": %llu, \"completed\": %llu, "
                "\"failed\": %llu, \"rejected\": %llu, "
                "\"alloc_retries\": %llu}\n  }",
                static_cast<unsigned long long>(pr.deferred),
                static_cast<unsigned long long>(pr.deferred_admitted),
                static_cast<unsigned long long>(pr.completed),
                static_cast<unsigned long long>(pr.failed),
                static_cast<unsigned long long>(pr.rejected),
                static_cast<unsigned long long>(pr.alloc_retries_delta));
  json += buf;
  session.add_section("serving", json);

  bool ok = true;
  ok &= check_ge("sim throughput scaling to 4 tenants",
                 sim[2].throughput() / sim[0].throughput(), 2.0);
  ok &= check_ge("sim throughput held at 8 tenants",
                 sim[3].throughput() / sim[2].throughput(), 0.9);
  ok &= check_le("threads p99 ratio at 8 tenants", fair.back().ratio(), 1.5);
  ok &= check_ge("pressure deferred-then-admitted",
                 static_cast<double>(pr.deferred_admitted), 1.0);
  ok &= check_ge("pressure alloc retries",
                 static_cast<double>(pr.alloc_retries_delta), 1.0);
  ok &= check_le("pressure failed+rejected",
                 static_cast<double>(pr.failed + pr.rejected), 0.0);
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  jaccx::bench::bench_session session("serving");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return acceptance(session);
}
