// Fig. 11 reproduction: lattice-Boltzmann (HARVEY D2Q9 pull) time per step
// versus lattice size, device-specific vs JACC, four architectures.
//
// Summary checks the in-text Sec. V-B speedups of the same JACC code on the
// GPUs over the Rome CPU: ~14x (MI100), ~20x (A100), ~6.5x (Max 1550).
#include <cstdio>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;

constexpr index_t edges[] = {32, 64, 128, 256, 512};

void bench_point(benchmark::State& state, arch a, bool via_jacc,
                 index_t edge) {
  double us = 0.0;
  for (auto _ : state) {
    us = lbm_step_us(a, via_jacc, edge);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}

void register_all() {
  for (const auto& a : all_archs) {
    for (bool via_jacc : {false, true}) {
      for (index_t edge : edges) {
        const std::string name = std::string("fig11/lbm/") + a.name + "/" +
                                 (via_jacc ? "jacc" : "native") + "/" +
                                 std::to_string(edge) + "x" +
                                 std::to_string(edge);
        benchmark::RegisterBenchmark(name.c_str(), [a, via_jacc, edge](benchmark::State& st) {
              bench_point(st, a, via_jacc, edge);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== Fig. 11 paper-parity summary (Sec. V-B) ===");
  const index_t edge = 512;
  const double cpu = lbm_step_us(all_archs[0], true, edge);
  const double paper_speedup[] = {1.0, 14.0, 20.0, 6.5};
  for (std::size_t k = 0; k < 4; ++k) {
    const auto& a = all_archs[k];
    const double native_us = lbm_step_us(a, false, edge);
    const double jacc_us = lbm_step_us(a, true, edge);
    std::printf("%-8s %lldx%lld: native %10.1f us, JACC %10.1f us "
                "(overhead %+5.1f%%), JACC speedup vs CPU %5.1fx "
                "(paper: %.1fx)\n",
                a.name, static_cast<long long>(edge),
                static_cast<long long>(edge), native_us, jacc_us,
                (jacc_us / native_us - 1.0) * 100.0, cpu / jacc_us,
                paper_speedup[k]);
  }
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("fig11_lbm");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
