#include "fig_common.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

#include "mem/pool.hpp"
#include "prof/prof.hpp"
#include "support/env.hpp"
#include "threadpool/thread_pool.hpp"

namespace jaccx::bench {
namespace {

/// Dispatches a native (device-specific) operation to the right vendor API.
template <class CudaFn, class HipFn, class OneFn, class RomeFn>
double native_dispatch(const arch& a, CudaFn cuda, HipFn hip, OneFn one,
                       RomeFn rome) {
  if (a.be == backend::cuda_a100) {
    return cuda();
  }
  if (a.be == backend::hip_mi100) {
    return hip();
  }
  if (a.be == backend::oneapi_max1550) {
    return one();
  }
  return rome();
}

} // namespace

double blas1_1d_us(const arch& a, bool via_jacc, bool is_dot, index_t n) {
  const std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  if (via_jacc) {
    jacc::scoped_backend sb(a.be);
    blas::darray x(host), y(host);
    return timed_us(a, [&] {
      if (is_dot) {
        benchmark::DoNotOptimize(blas::jacc_dot(n, x, y));
      } else {
        blas::jacc_axpy(n, 2.0, x, y);
      }
    });
  }
  auto& dev = dev_of(a);
  sim::device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  auto sx = dx.span();
  auto sy = dy.span();
  return native_dispatch(
      a,
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::native_gpu_dot<vendor::cuda_api>(n, sx, sy));
          } else {
            blas::native_gpu_axpy<vendor::cuda_api>(n, 2.0, sx, sy);
          }
        });
      },
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::native_gpu_dot<vendor::hip_api>(n, sx, sy));
          } else {
            blas::native_gpu_axpy<vendor::hip_api>(n, 2.0, sx, sy);
          }
        });
      },
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::native_gpu_dot<vendor::oneapi_api>(n, sx, sy));
          } else {
            blas::native_gpu_axpy<vendor::oneapi_api>(n, 2.0, sx, sy);
          }
        });
      },
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(blas::rome_dot(dev_of(a), n, sx, sy));
          } else {
            blas::rome_axpy(dev_of(a), n, 2.0, sx, sy);
          }
        });
      });
}

double blas1_2d_us(const arch& a, bool via_jacc, bool is_dot, index_t edge) {
  const index_t n = edge * edge;
  const std::vector<double> host(static_cast<std::size_t>(n), 1.0);
  if (via_jacc) {
    jacc::scoped_backend sb(a.be);
    blas::darray2d x(host, edge, edge), y(host, edge, edge);
    return timed_us(a, [&] {
      if (is_dot) {
        benchmark::DoNotOptimize(blas::jacc_dot2d(edge, edge, x, y));
      } else {
        blas::jacc_axpy2d(edge, edge, 2.0, x, y);
      }
    });
  }
  auto& dev = dev_of(a);
  sim::device_buffer<double> dx(dev, n), dy(dev, n);
  dx.copy_from_host(host.data());
  dy.copy_from_host(host.data());
  auto sx = dx.span2d(edge, edge);
  auto sy = dy.span2d(edge, edge);
  return native_dispatch(
      a,
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::native_gpu_dot2d<vendor::cuda_api>(edge, edge, sx, sy));
          } else {
            blas::native_gpu_axpy2d<vendor::cuda_api>(edge, edge, 2.0, sx,
                                                      sy);
          }
        });
      },
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::native_gpu_dot2d<vendor::hip_api>(edge, edge, sx, sy));
          } else {
            blas::native_gpu_axpy2d<vendor::hip_api>(edge, edge, 2.0, sx, sy);
          }
        });
      },
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::native_gpu_dot2d<vendor::oneapi_api>(edge, edge, sx,
                                                           sy));
          } else {
            blas::native_gpu_axpy2d<vendor::oneapi_api>(edge, edge, 2.0, sx,
                                                        sy);
          }
        });
      },
      [&] {
        return timed_us(a, [&] {
          if (is_dot) {
            benchmark::DoNotOptimize(
                blas::rome_dot2d(dev_of(a), edge, edge, sx, sy));
          } else {
            blas::rome_axpy2d(dev_of(a), edge, edge, 2.0, sx, sy);
          }
        });
      });
}

double lbm_step_us(const arch& a, bool via_jacc, index_t edge) {
  if (via_jacc) {
    jacc::scoped_backend sb(a.be);
    lbm::simulation sim(lbm::params{.size = edge, .tau = 0.8});
    sim.init_pulse();
    return timed_us(a, [&] { sim.step(); });
  }
  auto& dev = dev_of(a);
  const index_t total = lbm::q * edge * edge;
  std::vector<double> init(static_cast<std::size_t>(total));
  const index_t plane = edge * edge;
  for (int k = 0; k < lbm::q; ++k) {
    for (index_t s = 0; s < plane; ++s) {
      init[static_cast<std::size_t>(k * plane + s)] =
          lbm::weights[static_cast<std::size_t>(k)];
    }
  }
  sim::device_buffer<double> df(dev, total), df1(dev, total),
      df2(dev, total), dw(dev, lbm::q), dcx(dev, lbm::q), dcy(dev, lbm::q);
  df1.copy_from_host(init.data());
  df2.copy_from_host(init.data());
  dw.copy_from_host(lbm::weights.data());
  dcx.copy_from_host(lbm::vel_x.data());
  dcy.copy_from_host(lbm::vel_y.data());
  lbm::native_state st{df.span(), df1.span(), df2.span(), dw.span(),
                       dcx.span(), dcy.span(), edge, 0.8};
  return native_dispatch(
      a,
      [&] {
        return timed_us(a, [&] { lbm::native_gpu_step<vendor::cuda_api>(st); });
      },
      [&] {
        return timed_us(a, [&] { lbm::native_gpu_step<vendor::hip_api>(st); });
      },
      [&] {
        return timed_us(a,
                        [&] { lbm::native_gpu_step<vendor::oneapi_api>(st); });
      },
      [&] { return timed_us(a, [&] { lbm::rome_step(dev_of(a), st); }); });
}

double cg_iteration_us(const arch& a, bool via_jacc, index_t n) {
  if (via_jacc) {
    jacc::scoped_backend sb(a.be);
    cg::paper_state st(n);
    return timed_us(a, [&] { cg::paper_iteration(st); });
  }
  auto& dev = dev_of(a);
  const std::vector<double> half(static_cast<std::size_t>(n), 0.5);
  const std::vector<double> zero(static_cast<std::size_t>(n), 0.0);
  const std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  const std::vector<double> fours(static_cast<std::size_t>(n), 4.0);
  sim::device_buffer<double> sub(dev, n), diag(dev, n), super(dev, n),
      r(dev, n), p(dev, n), s(dev, n), x(dev, n), r_old(dev, n),
      r_aux(dev, n);
  sub.copy_from_host(ones.data());
  diag.copy_from_host(fours.data());
  super.copy_from_host(ones.data());
  r.copy_from_host(half.data());
  p.copy_from_host(half.data());
  s.copy_from_host(zero.data());
  x.copy_from_host(zero.data());
  r_old.copy_from_host(zero.data());
  r_aux.copy_from_host(zero.data());
  cg::native_workset st{sub.span(), diag.span(), super.span(), r.span(),
                        p.span(),   s.span(),    x.span(),     r_old.span(),
                        r_aux.span(), n};
  return native_dispatch(
      a,
      [&] {
        return timed_us(
            a, [&] { cg::native_gpu_iteration<vendor::cuda_api>(st); });
      },
      [&] {
        return timed_us(a,
                        [&] { cg::native_gpu_iteration<vendor::hip_api>(st); });
      },
      [&] {
        return timed_us(
            a, [&] { cg::native_gpu_iteration<vendor::oneapi_api>(st); });
      },
      [&] { return timed_us(a, [&] { cg::rome_iteration(dev_of(a), st); }); });
}

std::string row(const char* figure, const char* device, const char* model,
                const char* op, index_t n, double us) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-6s %-8s %-7s %-6s n=%-10lld %12.2f us",
                figure, device, model, op, static_cast<long long>(n), us);
  return buf;
}

namespace {

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

} // namespace

bench_session::bench_session(std::string name) : name_(std::move(name)) {
  prof::enable_collection();
}

void bench_session::add_section(std::string key, std::string json_value) {
  extra_.emplace_back(std::move(key), std::move(json_value));
}

bench_session::~bench_session() {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_session: cannot write %s\n", path.c_str());
  } else {
    out << "{\n  \"bench\": " << json_str(name_) << ",\n  \"config\": {";
    out << "\"backend\": "
        << json_str(std::string(jacc::to_string(jacc::current_backend())));
    out << ", \"hardware_concurrency\": "
        << std::thread::hardware_concurrency();
    const auto env = [&](const char* var) {
      const auto v = get_env(var);
      return v ? json_str(*v) : std::string("null");
    };
    out << ", \"JACC_NUM_THREADS\": " << env("JACC_NUM_THREADS")
        << ", \"JACC_SCHEDULE\": " << env("JACC_SCHEDULE")
        << ", \"JACC_SPIN_US\": " << env("JACC_SPIN_US")
        << ", \"JACC_PROFILE\": " << env("JACC_PROFILE")
        << ", \"mem_pool_mode\": "
        << json_str(std::string(mem::to_string(mem::mode()))) << "},\n";

    for (const auto& [key, value] : extra_) {
      out << "  " << json_str(key) << ": " << value << ",\n";
    }

    out << "  \"kernels\": [";
    bool first = true;
    char buf[512];
    for (const auto& k : prof::aggregate_kernels()) {
      const double mean =
          k.count != 0 ? k.total_us / static_cast<double>(k.count) : 0.0;
      std::snprintf(
          buf, sizeof buf,
          "%s\n    {\"name\": %s, \"construct\": \"%s\", \"backend\": %s, "
          "\"count\": %llu, \"units\": %llu, \"total_us\": %.3f, "
          "\"min_us\": %.3f, \"mean_us\": %.3f, \"max_us\": %.3f, "
          "\"gbytes_per_s\": %.3f, \"gflops_per_s\": %.3f}",
          first ? "" : ",", json_str(k.name).c_str(),
          prof::to_string(k.kind), json_str(k.backend).c_str(),
          static_cast<unsigned long long>(k.count),
          static_cast<unsigned long long>(k.units), k.total_us, k.min_us,
          mean, k.max_us, k.gbytes_per_s, k.gflops_per_s);
      out << buf;
      first = false;
    }
    out << "\n  ],\n  \"roofline\": [";
    first = true;
    for (const auto& r : prof::aggregate_roofline()) {
      std::snprintf(
          buf, sizeof buf,
          "%s\n    {\"name\": %s, \"target\": %s, \"simulated\": %s, "
          "\"count\": %llu, \"time_us\": %.3f, \"flops\": %.0f, "
          "\"bytes\": %.0f, \"intensity\": %.6f, \"peak_gbps\": %.1f, "
          "\"peak_gflops\": %.1f, \"ridge\": %.4f, \"achieved_gbps\": %.3f, "
          "\"achieved_gflops\": %.3f, \"attainable_gflops\": %.3f, "
          "\"pct_of_roof\": %.2f, \"memory_bound\": %s}",
          first ? "" : ",", json_str(r.name).c_str(),
          json_str(r.target).c_str(), r.simulated ? "true" : "false",
          static_cast<unsigned long long>(r.count), r.time_us, r.flops,
          r.bytes, r.intensity, r.peak.gbps, r.peak.gflops, r.ridge,
          r.achieved_gbps, r.achieved_gflops, r.attainable_gflops,
          r.pct_of_roof, r.memory_bound ? "true" : "false");
      out << buf;
      first = false;
    }
    out << "\n  ],\n  \"pools\": [";
    first = true;
    for (const auto& p : prof::aggregate_pools()) {
      out << (first ? "" : ",") << "\n    {\"width\": " << p.width
          << ", \"schedule\": " << json_str(p.schedule)
          << ", \"regions\": " << p.regions << ", \"workers\": [";
      bool wfirst = true;
      for (const auto& w : p.workers) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"worker\": %u, \"busy_us\": %.1f, \"spin_us\": "
                      "%.1f, \"park_us\": %.1f, \"parks\": %llu, "
                      "\"chunks\": %llu}",
                      wfirst ? "" : ", ", w.worker,
                      static_cast<double>(w.busy_ns) * 1e-3,
                      static_cast<double>(w.spin_ns) * 1e-3,
                      static_cast<double>(w.park_ns) * 1e-3,
                      static_cast<unsigned long long>(w.parks),
                      static_cast<unsigned long long>(w.chunks));
        out << buf;
        wfirst = false;
      }
      out << "]}";
      first = false;
    }
    out << "\n  ],\n  \"mem_pools\": [";
    first = true;
    for (const auto& mp : prof::aggregate_mem_pools()) {
      std::snprintf(buf, sizeof buf,
                    "%s\n    {\"pool\": %s, \"mode\": %s, \"hits\": %llu, "
                    "\"misses\": %llu, \"bytes_cached\": %llu, "
                    "\"bytes_live\": %llu, \"workspace_bytes\": %llu, "
                    "\"high_water_bytes\": %llu, \"live_blocks\": %llu}",
                    first ? "" : ",", json_str(mp.label).c_str(),
                    json_str(mp.mode).c_str(),
                    static_cast<unsigned long long>(mp.hits),
                    static_cast<unsigned long long>(mp.misses),
                    static_cast<unsigned long long>(mp.bytes_cached),
                    static_cast<unsigned long long>(mp.bytes_live),
                    static_cast<unsigned long long>(mp.workspace_bytes),
                    static_cast<unsigned long long>(mp.high_water_bytes),
                    static_cast<unsigned long long>(mp.live_blocks));
      out << buf;
      first = false;
    }
    const auto m = prof::aggregate_memory();
    std::snprintf(buf, sizeof buf,
                  "\n  ],\n  \"memory\": {\"allocs\": %llu, \"alloc_bytes\": "
                  "%llu, \"frees\": %llu, \"h2d_copies\": %llu, "
                  "\"h2d_bytes\": %llu, \"d2h_copies\": %llu, "
                  "\"d2h_bytes\": %llu}\n}\n",
                  static_cast<unsigned long long>(m.allocs),
                  static_cast<unsigned long long>(m.alloc_bytes),
                  static_cast<unsigned long long>(m.frees),
                  static_cast<unsigned long long>(m.h2d_copies),
                  static_cast<unsigned long long>(m.h2d_bytes),
                  static_cast<unsigned long long>(m.d2h_copies),
                  static_cast<unsigned long long>(m.d2h_bytes));
    out << buf;
  }
  jacc::finalize();
}

} // namespace jaccx::bench
