// Ablation / extension bench: multi-device scaling (paper Sec. VII future
// work).  Strong scaling (fixed n, 1..8 simulated A100s) and weak scaling
// (n per device fixed) for AXPY, DOT, and a halo-exchanged 3-point
// smoother.  Shows where sharding pays (bandwidth-bound large arrays) and
// where it cannot (launch/transfer-latency-bound reductions).
//
// Benches the deprecated hand-sharded front end on purpose (the auto-shard
// counterpart is bench/abl_auto_shard); silence its deprecation warnings.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <cstdio>

#include "fig_common.hpp"
#include "multi/multi.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::multi::context;
using jaccx::multi::marray;

enum class op { axpy, dot, smoother };
constexpr const char* op_names[] = {"axpy", "dot", "smoother"};

double multi_op_us(int ndev, op which, index_t n) {
  context ctx(jacc::backend::cuda_a100, ndev);
  ctx.reset_clocks();
  marray<double> x(ctx, std::vector<double>(static_cast<std::size_t>(n), 1.0),
                   which == op::smoother ? 1 : 0);
  marray<double> y(ctx, std::vector<double>(static_cast<std::size_t>(n), 2.0),
                   which == op::smoother ? 1 : 0);
  const auto run = [&] {
    switch (which) {
    case op::axpy:
      jaccx::multi::parallel_for(
          ctx, n,
          [](index_t i, jaccx::sim::device_span<double> xs,
             jaccx::sim::device_span<double> ys) {
            xs[i] += 2.0 * static_cast<double>(ys[i]);
          },
          x, y);
      break;
    case op::dot:
      benchmark::DoNotOptimize(jaccx::multi::parallel_reduce(
          ctx, n,
          [](index_t i, jaccx::sim::device_span<double> xs,
             jaccx::sim::device_span<double> ys) {
            return static_cast<double>(xs[i]) * static_cast<double>(ys[i]);
          },
          x, y));
      break;
    case op::smoother:
      x.exchange_halos();
      jaccx::multi::parallel_for(
          ctx, n,
          [n](index_t i, jaccx::sim::device_span<double> xs,
              jaccx::sim::device_span<double> ys, index_t base) {
            const index_t g = base + i;
            if (g > 0 && g < n - 1) {
              ys[i + 1] = (static_cast<double>(xs[i]) +
                           static_cast<double>(xs[i + 1]) +
                           static_cast<double>(xs[i + 2])) /
                          3.0;
            }
          },
          x, y, jaccx::multi::with_base);
      break;
    }
    return ctx.sync();
  };
  run(); // warm-up (cache population per device)
  const double t0 = ctx.now_us();
  run();
  return ctx.now_us() - t0;
}

void register_all() {
  for (op which : {op::axpy, op::dot, op::smoother}) {
    for (int ndev : {1, 2, 4, 8}) {
      // Strong scaling at 4M; weak scaling at 1M per device.
      for (bool weak : {false, true}) {
        const index_t n = weak ? (index_t{1} << 20) * ndev : index_t{1} << 22;
        const std::string name =
            std::string("abl_multi/") + (weak ? "weak/" : "strong/") +
            op_names[static_cast<int>(which)] + "/devices_" +
            std::to_string(ndev);
        benchmark::RegisterBenchmark(
            name.c_str(), [ndev, which, n](benchmark::State& st) {
              double us = 0.0;
              for (auto _ : st) {
                us = multi_op_us(ndev, which, n);
                st.SetIterationTime(us * 1e-6);
              }
              st.counters["sim_us"] = us;
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== multi-device scaling summary (Sec. VII future work) ===");
  const index_t n = 1 << 22;
  for (op which : {op::axpy, op::dot, op::smoother}) {
    const double t1 = multi_op_us(1, which, n);
    const double t4 = multi_op_us(4, which, n);
    const double t8 = multi_op_us(8, which, n);
    std::printf("%-9s n=%lld: 1 dev %9.1f us, 4 dev %9.1f us (%.2fx), "
                "8 dev %9.1f us (%.2fx)\n",
                op_names[static_cast<int>(which)], static_cast<long long>(n),
                t1, t4, t1 / t4, t8, t1 / t8);
  }
}

} // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
