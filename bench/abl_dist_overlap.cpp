// Extension bench: communication/computation overlap for distributed CG.
//
// One tridiag_cg iteration, sync vs pipelined, on the same communicator:
// bench_iteration() charges halo exchanges and allreduce rounds straight to
// the rank device clocks (every rank stalls through the (R-1)-pair halo
// chain and three collectives), while bench_iteration_async() routes them
// through the per-rank "<model>.rank<r>" comm streams — the rr dot hides
// the halo chain, the matvec hides the rr allreduce, and the x update
// hides the rr_new allreduce.  Vector values are bit-identical between the
// two (pinned by tests/dist_test.cpp); only the charge structure differs.
//
// Acceptance for the async layer: >= 1.25x lower simulated time per
// iteration on >= 4 a100 ranks at the pipeline-balanced size.
#include <cstdio>
#include <cstdlib>

#include "dist/dist_cg.hpp"
#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;
using jaccx::dist::communicator;
using jaccx::dist::nic_model;
using jaccx::dist::tridiag_cg;

// Local kernels in the ~10 us range on the a100 model — the same order as
// the halo exchange and an allreduce round, the regime where pipelining
// pays.  The per-iteration launch/reduction fixed cost (~90 us across ~13
// device ops) is identical in both variants and bounds the ratio; the
// saving grows with ranks (longer halo chain, one more allreduce round),
// so the acceptance is taken at 16 ranks.
constexpr index_t base_n = index_t{1} << 21;

double cg_iter_us(int ranks, index_t n, bool pipelined) {
  communicator comm(ranks, "a100", nic_model::infiniband_like());
  comm.reset();
  tridiag_cg solver(comm, n);
  solver.bench_reset();
  if (pipelined) {
    solver.bench_iteration_async(); // warm-up (streams, pool, workspaces)
    comm.sync_comm();
    const double t0 = comm.barrier();
    solver.bench_iteration_async();
    comm.sync_comm();
    return comm.barrier() - t0;
  }
  solver.bench_iteration(); // warm-up
  const double t0 = comm.barrier();
  solver.bench_iteration();
  return comm.barrier() - t0;
}

void register_all() {
  for (int ranks : {4, 8, 16}) {
    for (bool pipelined : {false, true}) {
      const std::string name = std::string("abl_dist_overlap/a100/ranks_") +
                               std::to_string(ranks) + "/" +
                               (pipelined ? "pipelined" : "sync");
      benchmark::RegisterBenchmark(
          name.c_str(), [ranks, pipelined](benchmark::State& st) {
            double us = 0.0;
            for (auto _ : st) {
              us = cg_iter_us(ranks, base_n, pipelined);
              st.SetIterationTime(us * 1e-6);
            }
            st.counters["sim_us"] = us;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

void print_summary() {
  std::puts("\n=== distributed overlap summary (sync vs pipelined) ===");
  for (int ranks : {4, 8, 16}) {
    const double ts = cg_iter_us(ranks, base_n, false);
    const double ta = cg_iter_us(ranks, base_n, true);
    std::printf("ranks %2d, n=%lld: sync %9.1f us/iter, pipelined %9.1f "
                "us/iter (%.2fx)\n",
                ranks, static_cast<long long>(base_n), ts, ta, ts / ta);
  }
  const double ratio =
      cg_iter_us(16, base_n, false) / cg_iter_us(16, base_n, true);
  std::printf("acceptance: 16-rank pipelined speedup = %.2fx (bar: >= 1.25x) "
              "%s\n",
              ratio, ratio >= 1.25 ? "PASS" : "FAIL");
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("dist_overlap");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
