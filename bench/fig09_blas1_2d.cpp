// Fig. 9 reproduction: 2D AXPY and DOT through JACC's multidimensional API
// versus the device-specific 16x16-tile codes, on the four architectures.
//
// Paper observations checked by the summary: the AXPY/DOT gap narrows
// relative to 1D, and the 1D overheads mostly disappear at 2D sizes.
#include <cstdio>

#include "fig_common.hpp"

namespace {

using namespace jaccx::bench;

constexpr index_t edges[] = {32, 128, 512, 1024, 2048};

void bench_point(benchmark::State& state, arch a, bool via_jacc, bool is_dot,
                 index_t edge) {
  double us = 0.0;
  for (auto _ : state) {
    us = blas1_2d_us(a, via_jacc, is_dot, edge);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["sim_us"] = us;
}

void register_all() {
  for (const auto& a : all_archs) {
    for (bool is_dot : {false, true}) {
      for (bool via_jacc : {false, true}) {
        for (index_t edge : edges) {
          const std::string name =
              std::string("fig09/") + (is_dot ? "dot2d" : "axpy2d") + "/" +
              a.name + "/" + (via_jacc ? "jacc" : "native") + "/" +
              std::to_string(edge) + "x" + std::to_string(edge);
          benchmark::RegisterBenchmark(name.c_str(), [a, via_jacc, is_dot, edge](benchmark::State& st) {
                bench_point(st, a, via_jacc, is_dot, edge);
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

void print_summary() {
  std::puts("\n=== Fig. 9 paper-parity summary (Sec. V-A2) ===");
  const index_t edge = 1024;
  for (const auto& a : all_archs) {
    const double axpy_native = blas1_2d_us(a, false, false, edge);
    const double axpy_jacc = blas1_2d_us(a, true, false, edge);
    const double dot_native = blas1_2d_us(a, false, true, edge);
    const double dot_jacc = blas1_2d_us(a, true, true, edge);
    std::printf("%-8s %lldx%lld: AXPY native %9.1f / jacc %9.1f us "
                "(%+5.1f%%)   DOT native %9.1f / jacc %9.1f us (%+5.1f%%)\n",
                a.name, static_cast<long long>(edge),
                static_cast<long long>(edge), axpy_native, axpy_jacc,
                (axpy_jacc / axpy_native - 1.0) * 100.0, dot_native, dot_jacc,
                (dot_jacc / dot_native - 1.0) * 100.0);
  }
  // Gap between DOT and AXPY must be smaller in 2D than in 1D for the GPUs
  // (paper: "the gap in performance between AXPY and DOT computations is
  // reduced in all GPUs" — sizes here are larger, so the fixed reduction
  // costs amortize).
  for (std::size_t k = 1; k < 4; ++k) {
    const auto& a = all_archs[k];
    const double gap2d = blas1_2d_us(a, true, true, edge) /
                         blas1_2d_us(a, true, false, edge);
    const double gap1d = blas1_1d_us(a, true, true, 1 << 12) /
                         blas1_1d_us(a, true, false, 1 << 12);
    std::printf("%-8s DOT/AXPY gap: 1D(n=4096) %.2fx -> 2D(%lld^2) %.2fx\n",
                a.name, gap1d, static_cast<long long>(edge), gap2d);
  }
}

} // namespace

int main(int argc, char** argv) {
  const jaccx::bench::bench_session session("fig09_blas1_2d");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
